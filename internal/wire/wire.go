// Package wire defines the protocol messages exchanged by the P2P
// primitives and their deterministic binary encoding.
//
// The core transmitted value follows the paper's Section 4 format
//
//	val := <type, id, seq, m, rnd>
//
// where type is INIT, ECHO or ACK for the ERB protocol, with CHOSEN and
// FINAL added by the optimized ERNG (Algorithm 6) and a handful of extra
// types used by the byzantine-model baseline protocols of Appendix B.
//
// The encoding is compact little-endian binary. An ERB INIT carrying a
// 32-byte random value encodes to well under 100 bytes before sealing,
// matching the ~100 B INIT / ~80 B ACK sizes the paper reports in its
// evaluation, so traffic-volume experiments reproduce Figure 3 faithfully.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// NodeID identifies a peer in the network. IDs are dense indices in
// [0, N) assigned at setup, as in the paper's model where every peer knows
// the full membership (assumption S1/S5).
type NodeID uint32

// NoNode is a sentinel for "no peer".
const NoNode = NodeID(^uint32(0))

// ValueSize is the size in bytes of a protocol value m (a k-bit random
// number with k = 256, or a message digest for ACKs).
const ValueSize = 32

// Value is a protocol value: the broadcast payload m of ERB, a random
// contribution in ERNG, or a digest H(val) inside an ACK.
type Value [ValueSize]byte

// IsZero reports whether the value is all zeroes. The protocols use the
// zero value together with a presence flag, never as in-band data.
func (v Value) IsZero() bool {
	return v == Value{}
}

// XOR returns the bitwise exclusive-or of two values, the combination
// operation of the ERNG protocols (Section 5).
func (v Value) XOR(o Value) Value {
	var out Value
	for i := range v {
		out[i] = v[i] ^ o[i]
	}
	return out
}

// String implements fmt.Stringer with a short hex prefix.
func (v Value) String() string {
	return fmt.Sprintf("%x", v[:4])
}

// Type enumerates protocol message types.
type Type uint8

// Message types. The first group is ERB/ERNG (SGX protocols); the second
// group belongs to the byzantine-model baseline protocols of Appendix B.
const (
	// TypeInit starts an ERB broadcast (initiator's message).
	TypeInit Type = iota + 1
	// TypeEcho relays a received broadcast value.
	TypeEcho
	// TypeAck acknowledges receipt of a valid INIT or ECHO (property P4).
	TypeAck
	// TypeChosen announces cluster membership in optimized ERNG.
	TypeChosen
	// TypeFinal disseminates a cluster's accepted set in optimized ERNG.
	TypeFinal
	// TypeStrawInit is the strawman protocol's INIT (Algorithm 1).
	TypeStrawInit
	// TypeStrawEcho is the strawman protocol's ECHO (Algorithm 1).
	TypeStrawEcho
	// TypeSigRelay is a signature-chain relay of the RBsig baseline
	// (Algorithm 4): a value plus the chain of signatures it accumulated.
	TypeSigRelay
	// TypeEarlyValue is the per-round value/liveness broadcast of the
	// RBearly baseline (Algorithm 5).
	TypeEarlyValue
)

var typeNames = map[Type]string{
	TypeInit:       "INIT",
	TypeEcho:       "ECHO",
	TypeAck:        "ACK",
	TypeChosen:     "CHOSEN",
	TypeFinal:      "FINAL",
	TypeStrawInit:  "STRAW-INIT",
	TypeStrawEcho:  "STRAW-ECHO",
	TypeSigRelay:   "SIG-RELAY",
	TypeEarlyValue: "EARLY-VALUE",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is a known message type. The types are a
// contiguous iota block, so this is a range check — Decode calls it per
// message, and the typeNames map lookup it replaced was measurable in
// delivery-heavy simulations.
func (t Type) Valid() bool {
	return t >= TypeInit && t <= TypeEarlyValue
}

// SigEntry is one link of an RBsig signature chain: the signer and its
// signature over the value and the chain so far.
type SigEntry struct {
	Signer    NodeID
	Signature []byte
}

// SetEntry is one element of a FINAL message's accepted set: the initiator
// of an ERB instance and the value accepted for it.
type SetEntry struct {
	Initiator NodeID
	Value     Value
}

// Message is the transmitted value val = <type, id, seq, m, rnd> plus the
// fields the concrete protocols need: the sender (authenticated by the
// channel, carried for baseline protocols that run without one), an
// instance number distinguishing concurrent/successive protocol instances,
// an optional presence flag for m, and optional set/signature sections.
type Message struct {
	// Type is the message type.
	Type Type
	// Sender is the peer that produced this message.
	Sender NodeID
	// Initiator is the id in val: the initiator of the broadcast this
	// message belongs to.
	Initiator NodeID
	// Instance distinguishes protocol instances (e.g. successive beacon
	// epochs). Within one instance, Seq provides per-sender freshness.
	Instance uint32
	// Seq is the sequence number of the initiator for this instance
	// (property P6).
	Seq uint64
	// Round is the protocol round rnd stamped by the sender's enclave
	// (property P5).
	Round uint32
	// HasValue indicates whether Value carries a payload. ERB uses it to
	// distinguish "no message yet" from a genuine all-zero value.
	HasValue bool
	// Value is m (or H(val) in an ACK).
	Value Value
	// Set is the accepted set carried by FINAL messages.
	Set []SetEntry
	// Sigs is the signature chain carried by SIG-RELAY messages.
	Sigs []SigEntry
}

// Encoding limits. Sets are bounded by the cluster size and signature
// chains by the round number; both fit comfortably in 16 bits.
const (
	maxSetEntries = 1 << 16
	maxSigEntries = 1 << 16
	maxSigLen     = 1 << 8
)

// Errors returned by Decode.
var (
	ErrTruncated   = errors.New("wire: truncated message")
	ErrBadType     = errors.New("wire: unknown message type")
	ErrBadFlags    = errors.New("wire: reserved flag bits set")
	ErrTooManySets = errors.New("wire: set section too large")
	ErrTooManySigs = errors.New("wire: signature section too large")
	ErrTrailing    = errors.New("wire: trailing bytes after message")
)

// headerSize is the fixed portion: type(1) sender(4) initiator(4)
// instance(4) seq(8) round(4) flags(1) value(32) setLen(2) sigLen(2).
const headerSize = 1 + 4 + 4 + 4 + 8 + 4 + 1 + ValueSize + 2 + 2

// EncodedSize returns the exact encoded length of the message.
func (m *Message) EncodedSize() int {
	n := headerSize
	n += len(m.Set) * (4 + ValueSize)
	for _, s := range m.Sigs {
		n += 4 + 1 + len(s.Signature)
	}
	return n
}

// Encode serializes the message. It never fails for messages within the
// section limits; oversized sections are reported as errors.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(nil)
}

// AppendEncode serializes the message appending to buf and returns the
// extended slice, byte-identical to Encode. The multicast hot path
// encodes into a reused per-peer scratch buffer, so steady-state sends
// pay no encode allocation. buf is pre-grown to the exact encoded size
// when its capacity is short.
func (m *Message) AppendEncode(buf []byte) ([]byte, error) {
	if len(m.Set) >= maxSetEntries {
		return nil, ErrTooManySets
	}
	if len(m.Sigs) >= maxSigEntries {
		return nil, ErrTooManySigs
	}
	if need := m.EncodedSize(); cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	buf = append(buf, byte(m.Type))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Sender))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Initiator))
	buf = binary.LittleEndian.AppendUint32(buf, m.Instance)
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, m.Round)
	var flags byte
	if m.HasValue {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = append(buf, m.Value[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Set)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Sigs)))
	for _, e := range m.Set {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Initiator))
		buf = append(buf, e.Value[:]...)
	}
	for _, s := range m.Sigs {
		if len(s.Signature) >= maxSigLen {
			return nil, ErrTooManySigs
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Signer))
		buf = append(buf, byte(len(s.Signature)))
		buf = append(buf, s.Signature...)
	}
	return buf, nil
}

// Decode parses a message produced by Encode. It rejects unknown types,
// truncated input and trailing bytes.
func Decode(data []byte) (*Message, error) {
	m := &Message{}
	if err := DecodeInto(m, data); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses a canonical encoding into an existing Message,
// overwriting every field. It exists for the runtime's receive path,
// which decodes each delivered message into one per-peer scratch Message
// instead of allocating one per delivery — the dominant allocation of a
// broadcast round before it was pooled. Semantics are identical to
// Decode (Set and Sigs come out nil when absent); on error m is left
// partially overwritten and must not be used.
func DecodeInto(m *Message, data []byte) error {
	if len(data) < headerSize {
		return ErrTruncated
	}
	m.Type = Type(data[0])
	if !m.Type.Valid() {
		return ErrBadType
	}
	off := 1
	m.Sender = NodeID(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	m.Initiator = NodeID(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	m.Instance = binary.LittleEndian.Uint32(data[off:])
	off += 4
	m.Seq = binary.LittleEndian.Uint64(data[off:])
	off += 8
	m.Round = binary.LittleEndian.Uint32(data[off:])
	off += 4
	// Reserved flag bits must be zero, or the encoding would not be
	// canonical: two distinct byte strings would decode to one message
	// (found by FuzzDecode, corpus testdata/fuzz/FuzzDecode).
	if data[off]&^1 != 0 {
		return ErrBadFlags
	}
	m.HasValue = data[off]&1 != 0
	off++
	copy(m.Value[:], data[off:off+ValueSize])
	off += ValueSize
	setLen := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	sigLen := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	m.Set = nil
	m.Sigs = nil
	if setLen > 0 {
		m.Set = make([]SetEntry, 0, setLen)
		for i := 0; i < setLen; i++ {
			if len(data)-off < 4+ValueSize {
				return ErrTruncated
			}
			var e SetEntry
			e.Initiator = NodeID(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			copy(e.Value[:], data[off:off+ValueSize])
			off += ValueSize
			m.Set = append(m.Set, e)
		}
	}
	if sigLen > 0 {
		m.Sigs = make([]SigEntry, 0, sigLen)
		for i := 0; i < sigLen; i++ {
			if len(data)-off < 5 {
				return ErrTruncated
			}
			var s SigEntry
			s.Signer = NodeID(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			n := int(data[off])
			off++
			if len(data)-off < n {
				return ErrTruncated
			}
			s.Signature = append([]byte(nil), data[off:off+n]...)
			off += n
			m.Sigs = append(m.Sigs, s)
		}
	}
	if off != len(data) {
		return ErrTrailing
	}
	return nil
}

// instanceOffset is the byte offset of the Instance field in an encoded
// message: type(1) + sender(4) + initiator(4).
const instanceOffset = 1 + 4 + 4

// PeekInstance reads the instance id out of an encoded message without
// decoding it. The multiplexed runtime uses it to attribute telemetry for
// already-encoded frames (e.g. a multicast leg that degraded to an
// omission) without paying a full decode. ok is false when the bytes are
// too short to be a message.
func PeekInstance(encoded []byte) (instance uint32, ok bool) {
	if len(encoded) < headerSize {
		return 0, false
	}
	return binary.LittleEndian.Uint32(encoded[instanceOffset:]), true
}

// String implements fmt.Stringer for logs and test failures.
func (m *Message) String() string {
	return fmt.Sprintf("%s{sender=%d init=%d inst=%d seq=%d rnd=%d val=%s}",
		m.Type, m.Sender, m.Initiator, m.Instance, m.Seq, m.Round, m.Value)
}

// Clone returns a deep copy of the message. The simulated network clones
// messages at the trust boundary so a byzantine OS mutating its copy can
// never alias honest state.
func (m *Message) Clone() *Message {
	out := *m
	if m.Set != nil {
		out.Set = append([]SetEntry(nil), m.Set...)
	}
	if m.Sigs != nil {
		out.Sigs = make([]SigEntry, len(m.Sigs))
		for i, s := range m.Sigs {
			out.Sigs[i] = SigEntry{Signer: s.Signer, Signature: append([]byte(nil), s.Signature...)}
		}
	}
	return &out
}
