package wire

import (
	"bytes"
	"testing"
)

// TestAppendEncodeMatchesEncode pins the scratch-buffer encode contract:
// AppendEncode emits exactly Encode's bytes, preserves any dst prefix,
// and reuses capacity across messages.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	msgs := []*Message{
		sampleMessage(),
		{Type: TypeAck, Sender: 9, Initiator: 3, Seq: 42, Round: 1, HasValue: true, Value: Value{0xFF}},
		{Type: TypeFinal, Sender: 2, Initiator: 2, Round: 10,
			Set: []SetEntry{{Initiator: 1, Value: Value{0xA}}, {Initiator: 5, Value: Value{0xB}}}},
		{Type: TypeSigRelay, Sender: 1, Initiator: 0, Round: 3,
			Sigs: []SigEntry{{Signer: 0, Signature: []byte{1, 2, 3}}, {Signer: 1, Signature: []byte{4}}}},
	}
	var scratch []byte
	for i, msg := range msgs {
		want, err := msg.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := msg.AppendEncode(scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		scratch = got
		if !bytes.Equal(want, got) {
			t.Fatalf("msg %d: AppendEncode differs from Encode", i)
		}
	}
	prefix := []byte("prefix")
	out, err := sampleMessage().AppendEncode(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sampleMessage().Encode()
	if !bytes.HasPrefix(out, prefix) || !bytes.Equal(out[len(prefix):], want) {
		t.Fatal("AppendEncode clobbered the dst prefix")
	}
}

// FuzzDecode feeds arbitrary bytes to Decode: it must never panic, and
// any accepted message must re-encode to exactly the input (the encoding
// is canonical: no two byte strings decode to the same message).
func FuzzDecode(f *testing.F) {
	for _, msg := range []*Message{
		sampleMessage(),
		{Type: TypeAck, Sender: 1, Initiator: 2, Seq: 3, Round: 4, HasValue: true},
		{Type: TypeFinal, Sender: 2, Initiator: 2, Round: 1,
			Set: []SetEntry{{Initiator: 0, Value: Value{1}}}},
		{Type: TypeSigRelay, Sender: 0, Initiator: 0, Round: 2,
			Sigs: []SigEntry{{Signer: 3, Signature: []byte{9, 9}}}},
		// Multiplexed-runtime ids: high instance numbers must round-trip
		// like any other header field.
		{Type: TypeEcho, Sender: 4, Initiator: 1, Instance: 100, Seq: 7, Round: 3, HasValue: true, Value: Value{5}},
		{Type: TypeAck, Sender: 2, Initiator: 0, Instance: 1<<32 - 1, Seq: 1, Round: 2, HasValue: true},
	} {
		enc, err := msg.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)-1])                       // truncated
		f.Add(append(append([]byte(nil), enc...), 0)) // trailing byte
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re, err := msg.AppendEncode(nil)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
		if msg.EncodedSize() != len(data) {
			t.Fatalf("EncodedSize %d, input %d", msg.EncodedSize(), len(data))
		}
	})
}
