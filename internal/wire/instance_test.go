package wire

import "testing"

// TestPeekInstance pins the zero-decode instance peek used by the
// runtime's telemetry attribution: the instance id read straight out of
// an encoded header must match the decoded message, for every type.
func TestPeekInstance(t *testing.T) {
	msgs := []*Message{
		sampleMessage(),
		{Type: TypeAck, Sender: 1, Initiator: 2, Instance: 0, Seq: 3, Round: 4, HasValue: true},
		{Type: TypeEcho, Sender: 4, Initiator: 1, Instance: 1<<32 - 1, Seq: 7, Round: 3, HasValue: true},
		{Type: TypeFinal, Sender: 2, Initiator: 2, Instance: 12, Round: 1,
			Set: []SetEntry{{Initiator: 0, Value: Value{1}}}},
	}
	for i, msg := range msgs {
		enc, err := msg.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := PeekInstance(enc)
		if !ok || got != msg.Instance {
			t.Fatalf("msg %d: PeekInstance = (%d, %v), want (%d, true)", i, got, ok, msg.Instance)
		}
	}
	if _, ok := PeekInstance(nil); ok {
		t.Fatal("PeekInstance accepted nil")
	}
	short, _ := sampleMessage().Encode()
	if _, ok := PeekInstance(short[:8]); ok {
		t.Fatal("PeekInstance accepted a truncated header")
	}
}
