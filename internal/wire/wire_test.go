package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		Type:      TypeInit,
		Sender:    3,
		Initiator: 3,
		Instance:  7,
		Seq:       42,
		Round:     1,
		HasValue:  true,
		Value:     Value{1, 2, 3, 4},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  *Message
	}{
		{name: "init", msg: sampleMessage()},
		{
			name: "ack with digest",
			msg: &Message{
				Type: TypeAck, Sender: 9, Initiator: 3, Instance: 7,
				Seq: 42, Round: 1, HasValue: true, Value: Value{0xFF},
			},
		},
		{
			name: "echo without value",
			msg:  &Message{Type: TypeEcho, Sender: 1, Initiator: 2, Round: 5},
		},
		{
			name: "chosen",
			msg:  &Message{Type: TypeChosen, Sender: 4, Initiator: 4, Round: 1},
		},
		{
			name: "final with set",
			msg: &Message{
				Type: TypeFinal, Sender: 2, Initiator: 2, Round: 10,
				Set: []SetEntry{
					{Initiator: 1, Value: Value{0xA}},
					{Initiator: 5, Value: Value{0xB}},
				},
			},
		},
		{
			name: "sig relay",
			msg: &Message{
				Type: TypeSigRelay, Sender: 6, Initiator: 0, Round: 3,
				HasValue: true, Value: Value{9},
				Sigs: []SigEntry{
					{Signer: 0, Signature: bytes.Repeat([]byte{1}, 64)},
					{Signer: 6, Signature: bytes.Repeat([]byte{2}, 64)},
				},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			data, err := tt.msg.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if len(data) != tt.msg.EncodedSize() {
				t.Fatalf("EncodedSize = %d, actual %d", tt.msg.EncodedSize(), len(data))
			}
			got, err := Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, tt.msg) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tt.msg)
			}
		})
	}
}

func TestWireSizesMatchPaper(t *testing.T) {
	// The paper reports INIT around 100 bytes and ACK around 80 bytes.
	// Our plaintext encoding must stay in that ballpark so the traffic
	// figures (Fig. 3) reproduce. Sealing adds a 48-byte envelope.
	init := sampleMessage()
	data, err := init.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 40 || len(data) > 120 {
		t.Fatalf("INIT encodes to %d bytes, outside the paper's ballpark", len(data))
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	msg := &Message{
		Type: TypeFinal, Sender: 2, Initiator: 2,
		Set:  []SetEntry{{Initiator: 1, Value: Value{1}}},
		Sigs: []SigEntry{{Signer: 3, Signature: []byte{1, 2, 3}}},
	}
	data, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i++ {
		if _, err := Decode(data[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	data, err := sampleMessage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(data, 0)); err != ErrTrailing {
		t.Fatalf("got %v, want ErrTrailing", err)
	}
}

func TestDecodeRejectsBadType(t *testing.T) {
	data, err := sampleMessage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 0xEE
	if _, err := Decode(data); err != ErrBadType {
		t.Fatalf("got %v, want ErrBadType", err)
	}
}

func TestTypeString(t *testing.T) {
	for _, tt := range []struct {
		typ  Type
		want string
	}{
		{TypeInit, "INIT"},
		{TypeEcho, "ECHO"},
		{TypeAck, "ACK"},
		{TypeChosen, "CHOSEN"},
		{TypeFinal, "FINAL"},
		{Type(0), "Type(0)"},
	} {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.typ, got, tt.want)
		}
	}
	if Type(0).Valid() || Type(200).Valid() {
		t.Error("invalid types reported valid")
	}
}

func TestValueXOR(t *testing.T) {
	a := Value{0xFF, 0x0F}
	b := Value{0x0F, 0xFF}
	got := a.XOR(b)
	want := Value{0xF0, 0xF0}
	if got != want {
		t.Fatalf("XOR = %v, want %v", got, want)
	}
	if !a.XOR(a).IsZero() {
		t.Fatal("v XOR v must be zero")
	}
	var zero Value
	if a.XOR(zero) != a {
		t.Fatal("v XOR 0 must be v")
	}
}

func TestClone(t *testing.T) {
	msg := &Message{
		Type: TypeFinal, Sender: 1,
		Set:  []SetEntry{{Initiator: 2, Value: Value{1}}},
		Sigs: []SigEntry{{Signer: 3, Signature: []byte{4, 5}}},
	}
	c := msg.Clone()
	if !reflect.DeepEqual(c, msg) {
		t.Fatal("clone differs from original")
	}
	c.Set[0].Initiator = 99
	c.Sigs[0].Signature[0] = 99
	c.Value[0] = 99
	if msg.Set[0].Initiator == 99 || msg.Sigs[0].Signature[0] == 99 || msg.Value[0] == 99 {
		t.Fatal("clone aliases original storage")
	}
}

// quickMessage builds a structurally valid random message for property
// tests.
func quickMessage(rng *rand.Rand) *Message {
	types := []Type{TypeInit, TypeEcho, TypeAck, TypeChosen, TypeFinal, TypeStrawInit, TypeStrawEcho, TypeSigRelay, TypeEarlyValue}
	m := &Message{
		Type:      types[rng.Intn(len(types))],
		Sender:    NodeID(rng.Uint32()),
		Initiator: NodeID(rng.Uint32()),
		Instance:  rng.Uint32(),
		Seq:       rng.Uint64(),
		Round:     rng.Uint32(),
		HasValue:  rng.Intn(2) == 0,
	}
	rng.Read(m.Value[:])
	for i, n := 0, rng.Intn(4); i < n; i++ {
		var e SetEntry
		e.Initiator = NodeID(rng.Uint32())
		rng.Read(e.Value[:])
		m.Set = append(m.Set, e)
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		sig := make([]byte, 64)
		rng.Read(sig)
		m.Sigs = append(m.Sigs, SigEntry{Signer: NodeID(rng.Uint32()), Signature: sig})
	}
	return m
}

// Property: Decode(Encode(m)) == m for arbitrary well-formed messages.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := quickMessage(rng)
		data, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary bytes; it either errors or
// returns a message that re-encodes to the same bytes.
func TestQuickDecodeRobust(t *testing.T) {
	f := func(data []byte) bool {
		m, err := Decode(data)
		if err != nil {
			return true
		}
		re, err := m.Encode()
		if err != nil {
			return false
		}
		return bytes.Equal(re, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: XOR over values is associative and commutative — the algebraic
// facts Theorem 5.1's unbiasedness proof relies on.
func TestQuickXORAlgebra(t *testing.T) {
	f := func(a, b, c Value) bool {
		if a.XOR(b) != b.XOR(a) {
			return false
		}
		return a.XOR(b).XOR(c) == a.XOR(b.XOR(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeInit(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInit(b *testing.B) {
	data, err := sampleMessage().Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
