// Package parallel provides the bounded worker pool used by the
// deployment builder and the experiment sweep engine. The paper's
// evaluation parallelizes across 40 machines; our simulated reproduction
// parallelizes across cores instead, along the two axes that are
// embarrassingly independent:
//
//   - per-node setup work (enclave launch, attestation, pairwise
//     Diffie-Hellman link derivation), and
//   - per-data-point experiment sweeps (each point owns a private
//     simulator and network).
//
// Results are always written to index-distinct slots and errors are
// reported in index order, so for a fixed seed the outcome is identical
// for any worker count — the determinism contract the equivalence tests
// in internal/deploy and internal/experiments pin down.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: zero or negative means
// GOMAXPROCS (use every core), anything else is taken literally. One
// means strictly serial execution on the calling goroutine.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (resolved by Workers). Indexes are claimed atomically, so the pool
// balances uneven work items. All items run even if some fail; the error
// for the lowest failing index is returned, which keeps the reported
// error independent of goroutine scheduling.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial path: stop at the first error like a plain loop would.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	errs := make([]error, n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order. On error the first failure by index
// is returned and the results are discarded.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, ferr := fn(i)
		if ferr != nil {
			return ferr
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
