package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Regardless of scheduling, the error for the lowest failing index
	// wins, so sweeps report deterministically.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(50, workers, func(i int) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 7" {
			t.Fatalf("workers=%d: err = %v, want fail 7", workers, err)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := Map(64, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	if _, err := Map(10, 4, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	}); err == nil {
		t.Fatal("error swallowed")
	}
}
