// Package beacon implements the first application of the paper's
// Appendix H: a random beacon service. A beacon periodically emits a
// common unbiased random value that no participant could predict or bias
// — the primitive behind lotteries, leader election, committee sampling
// and the other applications built in this repository (internal/keygen,
// internal/loadbal, internal/randomwalk).
//
// Each beacon epoch is one ERNG instance (basic or optimized) over a
// deployment; after the epoch, sequence numbers advance (P6), so replays
// from earlier epochs are worthless.
package beacon

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/wire"
)

// Source produces successive common random values. The downstream
// applications consume this interface so they can run on a live beacon or
// on a recorded trace.
type Source interface {
	// Next produces the next epoch's common random value.
	Next() (wire.Value, error)
}

// Mode selects the underlying ERNG protocol.
type Mode int

// Beacon modes.
const (
	// ModeBasic runs the unoptimized ERNG (t < N/2).
	ModeBasic Mode = iota + 1
	// ModeOptimized runs the cluster-sampled ERNG (t <= N/3).
	ModeOptimized
)

// Config parametrizes a beacon service.
type Config struct {
	// T is the byzantine bound.
	T int
	// Mode selects the protocol; defaults to ModeBasic.
	Mode Mode
}

// Emission is one beacon output.
type Emission struct {
	// Epoch is the instance number of the emitting ERNG run.
	Epoch uint32
	// OK is false when the epoch produced bottom.
	OK bool
	// Value is the emitted random value.
	Value wire.Value
	// Contributors lists the nodes whose entropy entered the output.
	Contributors []wire.NodeID
	// At is the virtual time of the emission.
	At time.Duration
	// Prev chains this emission to its predecessor (the digest of the
	// previous emission, zero for the first), making the beacon history
	// an append-only verifiable chain like the NIST randomness beacon
	// the paper cites.
	Prev wire.Value
	// Digest commits to this emission: H(epoch, value, prev).
	Digest wire.Value
}

// digestEmission computes an emission's chain commitment.
func digestEmission(e Emission) wire.Value {
	h := sha256.New()
	h.Write([]byte("sgxp2p/beacon-chain/v1/"))
	var eb [4]byte
	binary.LittleEndian.PutUint32(eb[:], e.Epoch)
	h.Write(eb[:])
	if e.OK {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write(e.Value[:])
	h.Write(e.Prev[:])
	var out wire.Value
	copy(out[:], h.Sum(nil))
	return out
}

// VerifyChain checks that a recorded beacon history is an unbroken
// hash chain: every emission commits to its predecessor and its digest is
// consistent. It returns the index of the first broken link, or -1.
func VerifyChain(history []Emission) int {
	var prev wire.Value
	for i, e := range history {
		if e.Prev != prev {
			return i
		}
		if digestEmission(e) != e.Digest {
			return i
		}
		prev = e.Digest
	}
	return -1
}

// Errors returned by the beacon.
var (
	// ErrDisagreement indicates honest nodes decided different values —
	// a protocol violation that should be impossible; surfaced rather
	// than silently picking one.
	ErrDisagreement = errors.New("beacon: honest nodes disagree")
	// ErrBottom indicates the epoch output bottom.
	ErrBottom = errors.New("beacon: epoch produced no output")
)

// Beacon drives beacon epochs over a deployment. It implements Source.
type Beacon struct {
	d       *deploy.Deployment
	cfg     Config
	history []Emission
}

// New builds a beacon service over an existing deployment.
func New(d *deploy.Deployment, cfg Config) (*Beacon, error) {
	if d == nil {
		return nil, errors.New("beacon: nil deployment")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeBasic
	}
	if cfg.T < 0 || 2*cfg.T+1 > len(d.Peers) {
		return nil, fmt.Errorf("beacon: invalid byzantine bound %d for N=%d", cfg.T, len(d.Peers))
	}
	return &Beacon{d: d, cfg: cfg}, nil
}

// History returns all emissions so far.
func (b *Beacon) History() []Emission {
	return append([]Emission(nil), b.history...)
}

// Next implements Source: run one epoch and return its value.
func (b *Beacon) Next() (wire.Value, error) {
	e, err := b.RunEpoch()
	if err != nil {
		return wire.Value{}, err
	}
	if !e.OK {
		return wire.Value{}, ErrBottom
	}
	return e.Value, nil
}

// RunEpoch executes one full ERNG instance across the deployment,
// verifies that every honest (non-halted) node decided identically, and
// records the emission.
func (b *Beacon) RunEpoch() (Emission, error) {
	type decider interface {
		Result() (erng.Result, bool)
	}
	deciders := make([]decider, len(b.d.Peers))
	for i, p := range b.d.Peers {
		if p.Halted() {
			continue
		}
		switch b.cfg.Mode {
		case ModeOptimized:
			o, err := erng.NewOptimized(p, b.cfg.T, erng.ModeAuto, 0)
			if err != nil {
				return Emission{}, fmt.Errorf("beacon: node %d: %w", i, err)
			}
			deciders[i] = o
			p.Start(o, o.Rounds())
		default:
			ba, err := erng.NewBasic(p, b.cfg.T)
			if err != nil {
				return Emission{}, fmt.Errorf("beacon: node %d: %w", i, err)
			}
			deciders[i] = ba
			p.Start(ba, ba.Rounds())
		}
	}
	if err := b.d.Run(); err != nil {
		return Emission{}, fmt.Errorf("beacon: epoch run: %w", err)
	}

	var (
		have   bool
		common erng.Result
		epoch  uint32
	)
	for i, dec := range deciders {
		if dec == nil || b.d.Peers[i].Halted() {
			continue
		}
		res, ok := dec.Result()
		if !ok {
			return Emission{}, fmt.Errorf("beacon: node %d undecided", i)
		}
		if !have {
			common = res
			have = true
			epoch = b.d.Peers[i].Instance()
			continue
		}
		if res.OK != common.OK || res.Value != common.Value {
			return Emission{}, ErrDisagreement
		}
	}
	if !have {
		return Emission{}, errors.New("beacon: no live nodes")
	}
	for _, p := range b.d.Peers {
		p.BumpSeqs()
	}
	e := Emission{
		Epoch:        epoch,
		OK:           common.OK,
		Value:        common.Value,
		Contributors: common.Contributors,
		At:           common.At,
	}
	if n := len(b.history); n > 0 {
		e.Prev = b.history[n-1].Digest
	}
	e.Digest = digestEmission(e)
	b.history = append(b.history, e)
	return e, nil
}

// RunEpochs runs k consecutive epochs, stopping at the first error.
func (b *Beacon) RunEpochs(k int) ([]Emission, error) {
	out := make([]Emission, 0, k)
	for i := 0; i < k; i++ {
		e, err := b.RunEpoch()
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}
