package beacon_test

import (
	"testing"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/beacon"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

func TestBeaconBasicEpochs(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 5, T: 2, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	b, err := beacon.New(d, beacon.Config{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	emissions, err := b.RunEpochs(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(emissions) != 3 {
		t.Fatalf("got %d emissions, want 3", len(emissions))
	}
	seen := make(map[wire.Value]bool)
	for i, e := range emissions {
		if !e.OK {
			t.Fatalf("emission %d is bottom", i)
		}
		if len(e.Contributors) != 5 {
			t.Fatalf("emission %d contributors %v", i, e.Contributors)
		}
		if seen[e.Value] {
			t.Fatalf("emission %d repeats an earlier value", i)
		}
		seen[e.Value] = true
	}
	if len(b.History()) != 3 {
		t.Fatalf("history length %d", len(b.History()))
	}
	// Epochs advance.
	if emissions[0].Epoch == emissions[1].Epoch {
		t.Fatal("epoch numbers did not advance")
	}
}

func TestBeaconSourceInterface(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 5, T: 2, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	b, err := beacon.New(d, beacon.Config{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	var src beacon.Source = b
	v1, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Fatal("consecutive beacon values identical")
	}
}

func TestBeaconOptimizedMode(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 30, T: 10, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	b, err := beacon.New(d, beacon.Config{T: 10, Mode: beacon.ModeOptimized})
	if err != nil {
		t.Fatal(err)
	}
	e, err := b.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !e.OK {
		t.Fatal("optimized epoch is bottom")
	}
	if len(e.Contributors) == 0 || len(e.Contributors) > 30 {
		t.Fatalf("contributors %v", e.Contributors)
	}
}

func TestBeaconSurvivesByzantineOmitters(t *testing.T) {
	const n, byz = 7, 3
	d, err := deploy.New(deploy.Options{
		N: n, T: byz, Seed: 54,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if int(id) >= byz {
				return tr
			}
			return adversary.Wrap(id, tr, adversary.OmitAll(), int64(id))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := beacon.New(d, beacon.Config{T: byz})
	if err != nil {
		t.Fatal(err)
	}
	// Byzantine nodes halt during epoch 1; later epochs run on survivors.
	for i := 0; i < 2; i++ {
		e, err := b.RunEpoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		if !e.OK {
			t.Fatalf("epoch %d bottom", i)
		}
		for _, c := range e.Contributors {
			if int(c) < byz {
				t.Fatalf("epoch %d includes byzantine contributor %d", i, c)
			}
		}
	}
}

func TestBeaconValidation(t *testing.T) {
	if _, err := beacon.New(nil, beacon.Config{}); err == nil {
		t.Error("nil deployment accepted")
	}
	d, err := deploy.New(deploy.Options{N: 5, T: 2, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := beacon.New(d, beacon.Config{T: 3}); err == nil {
		t.Error("t beyond N/2 accepted")
	}
	if _, err := beacon.New(d, beacon.Config{T: -1}); err == nil {
		t.Error("negative t accepted")
	}
}

func TestBeaconChainVerifies(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 5, T: 2, Seed: 56})
	if err != nil {
		t.Fatal(err)
	}
	b, err := beacon.New(d, beacon.Config{T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunEpochs(4); err != nil {
		t.Fatal(err)
	}
	history := b.History()
	if idx := beacon.VerifyChain(history); idx != -1 {
		t.Fatalf("honest chain broken at %d", idx)
	}
	// Tamper with an intermediate value: verification must localize it.
	history[1].Value[0] ^= 1
	if idx := beacon.VerifyChain(history); idx != 1 {
		t.Fatalf("tampered value detected at %d, want 1", idx)
	}
	history[1].Value[0] ^= 1
	// Drop an emission: the successor's Prev no longer matches.
	cut := append(append([]beacon.Emission(nil), history[:2]...), history[3])
	if idx := beacon.VerifyChain(cut); idx != 2 {
		t.Fatalf("spliced chain detected at %d, want 2", idx)
	}
	if idx := beacon.VerifyChain(nil); idx != -1 {
		t.Fatalf("empty chain should verify, got %d", idx)
	}
}
