// Package sybil implements the computational-puzzle sybil defence the
// paper's Appendix G (assumption S4) points to: joining the network is
// rate-limited by a hashcash-style proof of work bound to the joiner's
// attested identity, so an adversary cannot cheaply flood the membership
// with byzantine nodes. (In the paper's deployment model the SGX CPU
// itself already limits enclave count; the puzzle is the software-only
// complement for join control.)
package sybil

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math/bits"
)

// Errors returned by puzzle verification.
var (
	// ErrBadSolution indicates a nonce that does not meet the difficulty.
	ErrBadSolution = errors.New("sybil: solution does not meet difficulty")
	// ErrDifficulty indicates an unusable difficulty parameter.
	ErrDifficulty = errors.New("sybil: difficulty out of range [0, 64]")
	// ErrExhausted indicates Solve ran out of nonce budget.
	ErrExhausted = errors.New("sybil: nonce budget exhausted")
)

// Puzzle is a proof-of-work challenge: find a nonce such that
// SHA-256(tag || challenge || binding || nonce) has at least Difficulty
// leading zero bits. The binding ties the solution to the joiner (e.g.
// its attestation-quote digest) so solutions cannot be stockpiled or
// transferred.
type Puzzle struct {
	// Challenge is the verifier-chosen randomness (e.g. a beacon output).
	Challenge [32]byte
	// Binding identifies the solver; a solution only verifies with it.
	Binding []byte
	// Difficulty is the required number of leading zero bits (0..64).
	Difficulty int
}

// digest computes the puzzle hash for a nonce.
func (p Puzzle) digest(nonce uint64) [32]byte {
	h := sha256.New()
	h.Write([]byte("sgxp2p/sybil/v1/"))
	h.Write(p.Challenge[:])
	h.Write(p.Binding)
	var nb [8]byte
	binary.LittleEndian.PutUint64(nb[:], nonce)
	h.Write(nb[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// leadingZeroBits counts leading zero bits of a digest prefix.
func leadingZeroBits(d [32]byte) int {
	hi := binary.BigEndian.Uint64(d[:8])
	if hi != 0 {
		return bits.LeadingZeros64(hi)
	}
	lo := binary.BigEndian.Uint64(d[8:16])
	return 64 + bits.LeadingZeros64(lo)
}

// Verify checks a solution nonce.
func (p Puzzle) Verify(nonce uint64) error {
	if p.Difficulty < 0 || p.Difficulty > 64 {
		return ErrDifficulty
	}
	if leadingZeroBits(p.digest(nonce)) < p.Difficulty {
		return ErrBadSolution
	}
	return nil
}

// Solve searches nonces from 0 upward, up to budget attempts (0 means
// 2^Difficulty * 64, comfortably above the ~2^Difficulty expectation).
func (p Puzzle) Solve(budget uint64) (uint64, error) {
	if p.Difficulty < 0 || p.Difficulty > 64 {
		return 0, ErrDifficulty
	}
	if budget == 0 {
		budget = uint64(64) << uint(p.Difficulty)
	}
	for nonce := uint64(0); nonce < budget; nonce++ {
		if leadingZeroBits(p.digest(nonce)) >= p.Difficulty {
			return nonce, nil
		}
	}
	return 0, ErrExhausted
}

// Work estimates the expected number of hash evaluations a solver must
// perform: 2^Difficulty.
func Work(difficulty int) float64 {
	return float64(uint64(1) << uint(difficulty))
}
