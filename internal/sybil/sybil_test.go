package sybil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func puzzle(diff int, seed int64, binding string) Puzzle {
	var p Puzzle
	rand.New(rand.NewSource(seed)).Read(p.Challenge[:])
	p.Binding = []byte(binding)
	p.Difficulty = diff
	return p
}

func TestSolveVerifyRoundTrip(t *testing.T) {
	for diff := 0; diff <= 12; diff += 3 {
		p := puzzle(diff, int64(diff), "node-7")
		nonce, err := p.Solve(0)
		if err != nil {
			t.Fatalf("difficulty %d: %v", diff, err)
		}
		if err := p.Verify(nonce); err != nil {
			t.Fatalf("difficulty %d: own solution rejected: %v", diff, err)
		}
	}
}

func TestVerifyRejectsWrongNonce(t *testing.T) {
	p := puzzle(12, 1, "node-7")
	nonce, err := p.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for delta := uint64(1); delta <= 8; delta++ {
		if err := p.Verify(nonce + delta); err != nil {
			rejected++
		}
	}
	if rejected < 7 {
		t.Fatalf("only %d/8 perturbed nonces rejected at difficulty 12", rejected)
	}
}

func TestSolutionBoundToIdentity(t *testing.T) {
	// A solution for one binding must not transfer to another (no
	// stockpiling sybil identities).
	a := puzzle(12, 2, "quote-digest-A")
	b := puzzle(12, 2, "quote-digest-B")
	nonce, err := a.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(nonce); err == nil {
		t.Fatal("solution transferred across bindings")
	}
}

func TestSolutionBoundToChallenge(t *testing.T) {
	a := puzzle(12, 3, "x")
	b := puzzle(12, 4, "x")
	nonce, err := a.Solve(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(nonce); err == nil {
		t.Fatal("solution transferred across challenges")
	}
}

func TestDifficultyValidation(t *testing.T) {
	p := puzzle(65, 5, "x")
	if _, err := p.Solve(0); err != ErrDifficulty {
		t.Fatalf("Solve: %v, want ErrDifficulty", err)
	}
	if err := p.Verify(0); err != ErrDifficulty {
		t.Fatalf("Verify: %v, want ErrDifficulty", err)
	}
	p.Difficulty = -1
	if _, err := p.Solve(0); err != ErrDifficulty {
		t.Fatalf("Solve(-1): %v, want ErrDifficulty", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	p := puzzle(40, 6, "x")
	if _, err := p.Solve(4); err != ErrExhausted {
		t.Fatalf("tiny budget at difficulty 40: %v, want ErrExhausted", err)
	}
}

func TestZeroDifficultyAlwaysVerifies(t *testing.T) {
	p := puzzle(0, 7, "x")
	for nonce := uint64(0); nonce < 16; nonce++ {
		if err := p.Verify(nonce); err != nil {
			t.Fatalf("nonce %d rejected at difficulty 0", nonce)
		}
	}
}

func TestWorkDoubles(t *testing.T) {
	if Work(5) != 32 || Work(6) != 64 {
		t.Fatalf("Work(5)=%v Work(6)=%v", Work(5), Work(6))
	}
}

// Property: any solution returned by Solve verifies, for random
// challenges, bindings and small difficulties.
func TestQuickSolveAlwaysVerifies(t *testing.T) {
	f := func(seed int64, binding []byte, diffRaw uint8) bool {
		p := Puzzle{Binding: binding, Difficulty: int(diffRaw % 10)}
		rand.New(rand.NewSource(seed)).Read(p.Challenge[:])
		nonce, err := p.Solve(0)
		if err != nil {
			return false
		}
		return p.Verify(nonce) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveDifficulty12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := puzzle(12, int64(i), "bench")
		if _, err := p.Solve(0); err != nil {
			b.Fatal(err)
		}
	}
}
