package chaos

import (
	"math/rand"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/wire"
)

// Generate derives a random fault schedule from a seed for a network of
// n nodes, a fault budget t and a protocol of the given number of
// lockstep rounds. The same (seed, n, t, rounds) always yields the same
// schedule — the seed IS the schedule, which is what makes a failing
// invariant run reproducible from one printed integer.
//
// The generator draws a fault count f ≤ t, picks f victims, and spends
// them on a mix of the attack taxonomy: crashes (with optional
// restarts), behavior flips (full/selective/probabilistic omission A3,
// delay A4, corruption A2) and, sometimes, a partition cutting a subset
// of the victims off for a window of rounds. The schedule never exceeds
// the budget: Validate(n, t) holds by construction.
func Generate(seed int64, n, t, rounds int) *Schedule {
	s := NewSchedule()
	if t <= 0 || rounds < 2 || n < 2 {
		return s
	}
	rng := rand.New(rand.NewSource(seed))
	f := rng.Intn(t + 1)
	if f == 0 {
		return s
	}
	perm := rng.Perm(n)
	victims := make([]wire.NodeID, f)
	for i := range victims {
		victims[i] = wire.NodeID(perm[i])
	}

	// Sometimes cut a prefix of the victims off behind a partition for a
	// window of rounds; the rest of the network is the explicit majority
	// group, so Faulty charges exactly the minority.
	cut := 0
	if rng.Intn(3) == 0 {
		cut = 1 + rng.Intn(f)
		from := 1 + rng.Intn(rounds-1)
		to := from + 1 + rng.Intn(rounds-from)
		minority := append([]wire.NodeID(nil), victims[:cut]...)
		inMinority := make([]bool, n)
		for _, id := range minority {
			inMinority[id] = true
		}
		majority := make([]wire.NodeID, 0, n-cut)
		for id := 0; id < n; id++ {
			if !inMinority[id] {
				majority = append(majority, wire.NodeID(id))
			}
		}
		s.Partition([][]wire.NodeID{majority, sortIDs(minority)}, from, to)
	}

	for _, node := range victims[cut:] {
		r := 1 + rng.Intn(rounds)
		switch rng.Intn(5) {
		case 0:
			s.CrashAt(node, r)
			if rng.Intn(2) == 0 {
				s.RestartAfter(node, 1+rng.Intn(3))
			}
		case 1:
			s.FlipBehavior(node, r, "omit-all", adversary.OmitAll())
		case 2:
			s.FlipBehavior(node, r, "omit-even", adversary.OmitTo(func(dst wire.NodeID) bool {
				return dst%2 == 0
			}))
		case 3:
			s.FlipBehavior(node, r, "delay-all", adversary.DelayAll())
		case 4:
			s.FlipBehavior(node, r, "corrupt-all", adversary.CorruptEverything())
		}
	}
	return s
}
