package chaos

import (
	"fmt"
	"testing"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/parallel"
	"sgxp2p/internal/stats"
	"sgxp2p/internal/wire"
)

// The ERNG bias suite (Theorem 2): an adversary that suppresses up to t
// contributors via omission schedules must not bias the beacon output.
// Every contribution is drawn inside an enclave and committed (round 1)
// before the adversary can observe anything about it, so omitting a
// subset only removes uniform terms from the XOR — the result stays
// uniform. The suite runs ≥256 fixed-seed epochs per variant, each under
// a different omission schedule, and chi-squares the output distribution.

// chiSquareCritical is the rejection threshold for 16 buckets (df=15) at
// significance 0.001 — conservative enough that a correct implementation
// with fixed seeds never trips it, while a biased fold (e.g. dropping a
// contributor after seeing the partial XOR) lands far beyond it.
const chiSquareCritical = 37.70

// biasRun executes one beacon epoch under an omission schedule derived
// from the run index: run r suppresses k = r mod (t+1) contributors,
// rotating which nodes are silenced, and on odd runs silences them only
// toward the low half of the network (selective omission A3). It runs on
// a pool goroutine, so failures are returned, not Fataled.
func biasRun(run, n, tb int, optimized bool) (wire.Value, bool, error) {
	seed := int64(0xB1A5<<8) + int64(run)
	k := run % (tb + 1)
	sched := NewSchedule()
	for i := 0; i < k; i++ {
		node := wire.NodeID((run + i) % n)
		if run%2 == 1 && !optimized {
			// Selective omission (A3) toward the low half. Sound only for
			// the basic beacon: the optimized beacon's round-1 CHOSEN
			// announcements are not reliably broadcast, so selectively
			// omitting them splits the cluster view — the known gap pinned
			// by TestOptimizedSelectiveChosenSplit.
			half := wire.NodeID(n / 2)
			sched.FlipBehavior(node, 1, "omit-low", adversary.OmitTo(func(dst wire.NodeID) bool {
				return dst < half
			}))
		} else {
			sched.FlipBehavior(node, 1, "omit-all", adversary.OmitAll())
		}
	}
	o, err := RunERNGSchedule(seed, n, tb, optimized, sched)
	if err != nil {
		return wire.Value{}, false, fmt.Errorf("run %d (seed %d): %w", run, seed, err)
	}
	if err := CheckERNG(o); err != nil {
		return wire.Value{}, false, fmt.Errorf("run %d: %w", run, err)
	}
	for _, no := range o.Nodes {
		if no.Honest {
			return no.Value, no.Accepted, nil
		}
	}
	return wire.Value{}, false, fmt.Errorf("run %d: no honest node in outcome", run)
}

// checkUnbiased chi-squares the low nibble of the first output byte over
// all non-bottom epochs and bounds the per-bit bias of the full values.
func checkUnbiased(t *testing.T, label string, values []wire.Value) {
	t.Helper()
	counts := make([]int, 16)
	for _, v := range values {
		counts[v[0]&0x0f]++
	}
	chi2, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 > chiSquareCritical {
		t.Errorf("%s: chi-square %.2f over %d epochs exceeds critical %.2f (df=15, α=0.001): output bits are biased; counts=%v",
			label, chi2, len(values), chiSquareCritical, counts)
	}
	bias, err := stats.BitBias(values)
	if err != nil {
		t.Fatal(err)
	}
	if limit := stats.BitBiasThreshold(len(values), 4); bias > limit {
		t.Errorf("%s: per-bit bias %.4f over %d epochs exceeds 4σ threshold %.4f",
			label, bias, len(values), limit)
	}
}

func testBias(t *testing.T, n, tb int, optimized bool, label string) {
	runs := 256
	if testing.Short() {
		runs = 64
	}
	type epoch struct {
		value wire.Value
		ok    bool
	}
	epochs, err := parallel.Map(runs, 0, func(run int) (epoch, error) {
		v, ok, err := biasRun(run, n, tb, optimized)
		return epoch{value: v, ok: ok}, err
	})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]wire.Value, 0, runs)
	bottoms := 0
	for _, e := range epochs {
		if !e.ok {
			bottoms++
			continue
		}
		values = append(values, e.value)
	}
	// The optimized beacon can output bottom on a degenerate cluster draw
	// (probability ~1e-3 per epoch); more than a few percent means the
	// omission schedules are knocking clusters out, which Theorem 2 does
	// not allow.
	if bottoms*20 > runs {
		t.Fatalf("%s: %d/%d epochs output bottom", label, bottoms, runs)
	}
	checkUnbiased(t, label, values)
}

// TestERNGBasicUnbiasedUnderOmission: unoptimized beacon, N=5, t=2.
func TestERNGBasicUnbiasedUnderOmission(t *testing.T) {
	testBias(t, 5, 2, false, "basic N=5 t=2")
}

// TestERNGOptimizedUnbiasedUnderOmission: cluster-sampled beacon, N=9,
// t=3 (fallback parameters for N < 256).
func TestERNGOptimizedUnbiasedUnderOmission(t *testing.T) {
	testBias(t, 9, 3, true, "optimized N=9 t=3")
}

// TestOptimizedSelectiveChosenSplit pins a gap the chaos engine
// surfaced: the optimized beacon's round-1 CHOSEN announcements are
// plain multicasts, not reliable broadcasts, and they carry no ACK
// threshold (receivers do not acknowledge CHOSEN, so P4 cannot punish a
// selective announcer). A byzantine OS that delivers its CHOSEN only to
// half the network therefore splits the cluster view: honest cluster
// members build their embedded ERB over different member sets and their
// FINAL sets can diverge, breaking beacon agreement even with t ≤ N/3.
// The basic beacon is immune — its membership is the static roster.
//
// This is inherited from Algorithm 6, whose analysis implicitly assumes
// every node observes the same Schosen; fixing it would mean reliably
// broadcasting cluster membership (an extra ERB round). Until then the
// divergence is pinned here so a future fix flips this test.
func TestOptimizedSelectiveChosenSplit(t *testing.T) {
	const seed = int64(0xB1A5<<8) + 59
	sched := NewSchedule()
	for _, node := range []wire.NodeID{5, 6, 7} {
		sched.FlipBehavior(node, 1, "omit-low", adversary.OmitTo(func(dst wire.NodeID) bool {
			return dst < 4
		}))
	}
	o, err := RunERNGSchedule(seed, 9, 3, true, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckERNG(o); err == nil {
		t.Fatal("selective CHOSEN omission no longer splits the cluster view: " +
			"the known Algorithm 6 gap appears fixed — re-enable selective " +
			"omission for the optimized variant in the bias suite")
	}
	// The same suppression pattern done symmetrically (omit-all) must be
	// harmless: the announcers exclude themselves from the cluster
	// consistently at every observer.
	sym := NewSchedule()
	for _, node := range []wire.NodeID{5, 6, 7} {
		sym.FlipBehavior(node, 1, "omit-all", adversary.OmitAll())
	}
	o, err = RunERNGSchedule(seed, 9, 3, true, sym)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckERNG(o); err != nil {
		t.Fatalf("symmetric omission of the same nodes must keep agreement: %v", err)
	}
}
