package chaos

import (
	"reflect"
	"testing"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/wire"
)

// TestSameSeedSameTrace is the determinism contract: two runs of the same
// seed produce the identical schedule, the identical simulator
// interleaving (TraceHash and event count) and identical per-node
// outcomes, bit for bit.
func TestSameSeedSameTrace(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		a, err := RunERB(seed, 9, 3)
		if err != nil {
			t.Fatalf("seed %d: run A: %v", seed, err)
		}
		b, err := RunERB(seed, 9, 3)
		if err != nil {
			t.Fatalf("seed %d: run B: %v", seed, err)
		}
		if a.Schedule != b.Schedule {
			t.Fatalf("seed %d: schedules differ:\n  %s\n  %s", seed, a.Schedule, b.Schedule)
		}
		if a.TraceHash != b.TraceHash || a.Fired != b.Fired {
			t.Fatalf("seed %d: traces differ: %#x/%d events vs %#x/%d events",
				seed, a.TraceHash, a.Fired, b.TraceHash, b.Fired)
		}
		if !reflect.DeepEqual(a.Nodes, b.Nodes) {
			t.Fatalf("seed %d: node outcomes differ:\n%+v\n%+v", seed, a.Nodes, b.Nodes)
		}
		if a.Stats != b.Stats {
			t.Fatalf("seed %d: engine stats differ: %+v vs %+v", seed, a.Stats, b.Stats)
		}
	}
}

// TestDifferentSeedsDiverge sanity-checks that the fingerprint actually
// discriminates: across a handful of seeds at least two traces differ.
func TestDifferentSeedsDiverge(t *testing.T) {
	hashes := map[uint64]bool{}
	for seed := int64(1); seed <= 6; seed++ {
		o, err := RunERB(seed, 9, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		hashes[o.TraceHash] = true
	}
	if len(hashes) < 2 {
		t.Fatalf("6 different seeds produced %d distinct traces", len(hashes))
	}
}

// TestCrashStopsParticipation crashes a non-initiator at round 2: the
// node observes no round past 1, is stopped at the end, and the honest
// rest still accepts the broadcast.
func TestCrashStopsParticipation(t *testing.T) {
	sched := NewSchedule().CrashAt(1, 2)
	o, err := RunERBSchedule(99, 5, 2, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckERB(o); err != nil {
		t.Fatal(err)
	}
	crashed := o.Nodes[1]
	if !crashed.Stopped {
		t.Fatalf("node 1 not stopped at end of run: %+v", crashed)
	}
	if crashed.LastRound != 1 {
		t.Fatalf("crashed node observed round %d, want 1 (crash fires before its round-2 tick)", crashed.LastRound)
	}
	for _, no := range o.Nodes {
		if no.Honest && !no.Accepted {
			t.Fatalf("honest node %d did not accept despite single crash: %+v", no.Node, no)
		}
	}
	if o.Stats.Crashes != 1 {
		t.Fatalf("engine stats: %+v, want 1 crash", o.Stats)
	}
}

// TestCrashRestart crashes a node and reboots it two rounds later: the
// restart must succeed (same keys, see deploy's lifecycle tests) and the
// node ends the run attached, though it sat the instance out.
func TestCrashRestart(t *testing.T) {
	sched := NewSchedule().CrashAt(3, 2)
	sched.RestartAfter(3, 2)
	o, err := RunERBSchedule(7, 9, 3, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckERB(o); err != nil {
		t.Fatal(err)
	}
	if o.Stats.Crashes != 1 || o.Stats.Restarts != 1 || o.Stats.RestartFailures != 0 {
		t.Fatalf("engine stats: %+v, want 1 crash + 1 restart", o.Stats)
	}
	if o.Nodes[3].Stopped {
		t.Fatalf("node 3 still stopped after scheduled restart: %+v", o.Nodes[3])
	}
	if o.Nodes[3].Decided && o.Nodes[3].Accepted {
		t.Fatalf("restarted node decided mid-flight instance it sat out: %+v", o.Nodes[3])
	}
}

// TestPartitionCutsTraffic cuts two nodes off for the whole run: the
// majority still agrees (the minority is charged to the fault budget)
// and the cut actually dropped envelopes in both directions.
func TestPartitionCutsTraffic(t *testing.T) {
	minority := []wire.NodeID{3, 4}
	majority := []wire.NodeID{0, 1, 2, 5, 6, 7, 8}
	sched := NewSchedule().Partition([][]wire.NodeID{majority, minority}, 1, 6)
	o, err := RunERBSchedule(11, 9, 4, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckERB(o); err != nil {
		t.Fatal(err)
	}
	if o.F != 2 {
		t.Fatalf("faulty set %v, want the 2-node minority", o.Faulty)
	}
	if o.Stats.CutDrops == 0 {
		t.Fatal("partition active for the whole run but no envelope crossed the cut")
	}
	for _, no := range o.Nodes {
		if no.Honest && !no.Accepted {
			t.Fatalf("majority node %d did not accept: %+v", no.Node, no)
		}
	}
}

// TestFlipBehavior flips a node to full omission at round 1 and back to
// honest at round 3; the rest of the network is unaffected.
func TestFlipBehavior(t *testing.T) {
	sched := NewSchedule().
		FlipBehavior(2, 1, "omit-all", adversary.OmitAll()).
		FlipBehavior(2, 3, "honest", nil)
	o, err := RunERBSchedule(5, 5, 2, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckERB(o); err != nil {
		t.Fatal(err)
	}
	if o.Stats.Flips != 2 {
		t.Fatalf("engine stats: %+v, want 2 flips", o.Stats)
	}
}

// TestDelayDrainDeterministic runs a delay-heavy schedule twice: the
// post-run Drain's release/discard coin flips are part of the seeded
// trace, so both runs dispose of the held envelopes identically.
func TestDelayDrainDeterministic(t *testing.T) {
	mk := func() (*Outcome, error) {
		sched := NewSchedule().FlipBehavior(1, 1, "delay-all", adversary.DelayAll())
		return RunERBSchedule(23, 5, 2, sched)
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.DrainReleased+a.Stats.DrainDiscarded == 0 {
		t.Fatal("delay-all schedule held no envelopes to drain")
	}
	if a.Stats != b.Stats || a.TraceHash != b.TraceHash {
		t.Fatalf("drain not deterministic: %+v/%#x vs %+v/%#x",
			a.Stats, a.TraceHash, b.Stats, b.TraceHash)
	}
	if err := CheckERB(a); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleString checks the canonical rendering used as the
// reproduction witness.
func TestScheduleString(t *testing.T) {
	s := NewSchedule().CrashAt(3, 2)
	s.RestartAfter(3, 1)
	s.FlipBehavior(1, 1, "omit-all", adversary.OmitAll())
	s.Partition([][]wire.NodeID{{0, 2, 4}, {1, 3}}, 2, 4)
	got := s.String()
	want := "flip(1,omit-all)@r1 crash(3)@r2 part([0 2 4|1 3])@r2 restart(3)@r3 heal@r4"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if NewSchedule().String() != "fault-free" {
		t.Fatalf("empty schedule renders %q", NewSchedule().String())
	}
}

// TestScheduleValidate exercises the static checks.
func TestScheduleValidate(t *testing.T) {
	if err := NewSchedule().CrashAt(9, 1).Validate(5, 2); err == nil {
		t.Fatal("out-of-range node not rejected")
	}
	if err := NewSchedule().Partition([][]wire.NodeID{{0, 1}, {1, 2}}, 1, 2).Validate(5, 2); err == nil {
		t.Fatal("overlapping partition groups not rejected")
	}
	if err := NewSchedule().CrashAt(0, 1).CrashAt(1, 1).CrashAt(2, 1).Validate(9, 2); err == nil {
		t.Fatal("fault budget overflow not rejected")
	}
	if err := NewSchedule().CrashAt(0, 1).Validate(5, 2); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestGenerate checks the generator is deterministic and always within
// the fault budget.
func TestGenerate(t *testing.T) {
	distinct := map[string]bool{}
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(seed, 9, 4, 6)
		b := Generate(seed, 9, 4, 6)
		if a.String() != b.String() {
			t.Fatalf("seed %d: generator not deterministic:\n  %s\n  %s", seed, a, b)
		}
		if err := a.Validate(9, 4); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v", seed, err)
		}
		distinct[a.String()] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("50 seeds produced only %d distinct schedules", len(distinct))
	}
}
