package chaos

import "testing"

// The property-based invariant suite: randomized fault schedules must
// never violate the paper's guarantees while the faulty set stays within
// the bound. Every failure message embeds the seed — one integer
// reproduces the identical schedule, interleaving and failure via
// RunERB(seed, n, t) or `p2pexp -experiment chaos -chaos-seed <seed>`.

// erbCases are the network shapes of the ERB sweep: N ∈ {5, 9, 17} at
// the maximal bound t < N/2.
var erbCases = []struct{ n, t int }{
	{5, 2},
	{9, 4},
	{17, 8},
}

// TestERBInvariants sweeps randomized schedules against a single ERB
// broadcast and asserts agreement, validity, integrity and termination
// within min{f+2, t+2} rounds on every honest node.
func TestERBInvariants(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for _, c := range erbCases {
		for s := 1; s <= seeds; s++ {
			seed := int64(c.n)*10_000 + int64(s)
			o, err := RunERB(seed, c.n, c.t)
			if err != nil {
				t.Fatalf("seed %d N=%d t=%d: run failed: %v", seed, c.n, c.t, err)
			}
			if err := CheckERB(o); err != nil {
				t.Errorf("seed %d N=%d t=%d: %v", seed, c.n, c.t, err)
			}
		}
	}
}

// TestERNGBasicInvariants sweeps randomized schedules against the
// unoptimized beacon: every honest node must terminate with the identical
// output.
func TestERNGBasicInvariants(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for _, c := range []struct{ n, t int }{{5, 2}, {9, 4}} {
		for s := 1; s <= seeds; s++ {
			seed := int64(c.n)*20_000 + int64(s)
			o, err := RunERNG(seed, c.n, c.t, false)
			if err != nil {
				t.Fatalf("seed %d N=%d t=%d: run failed: %v", seed, c.n, c.t, err)
			}
			if err := CheckERNG(o); err != nil {
				t.Errorf("seed %d N=%d t=%d (basic): %v", seed, c.n, c.t, err)
			}
		}
	}
}

// TestERNGOptimizedInvariants sweeps randomized schedules against the
// cluster-sampled beacon (t ≤ N/3).
func TestERNGOptimizedInvariants(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for s := 1; s <= seeds; s++ {
		seed := int64(30_000 + s)
		o, err := RunERNG(seed, 9, 3, true)
		if err != nil {
			t.Fatalf("seed %d N=9 t=3: run failed: %v", seed, err)
		}
		if err := CheckERNG(o); err != nil {
			t.Errorf("seed %d N=9 t=3 (optimized): %v", seed, err)
		}
	}
}
