package chaos

import (
	"time"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// EngineStats counts what the engine did during a run.
type EngineStats struct {
	// Crashes, Restarts, Flips, Partitions and Heals count applied
	// schedule events. RestartFailures counts restarts that could not be
	// applied (e.g. no live node left to copy state from).
	Crashes, Restarts, RestartFailures, Flips, Partitions, Heals uint64
	// CutDrops counts envelopes dropped by an active partition (both
	// send-side and delivery-side filtering).
	CutDrops uint64
	// DrainReleased and DrainDiscarded count held envelopes disposed of
	// by Drain.
	DrainReleased, DrainDiscarded int
}

// Engine compiles a Schedule into per-node transport wrappers plus
// virtual-clock events. Usage:
//
//	eng := chaos.NewEngine(sched, seed)
//	d, _ := deploy.New(deploy.Options{..., Wrap: eng.Wrap})
//	eng.Arm(d)          // BEFORE peers Start: events outrank round ticks
//	... start peers, d.Run() ...
//	eng.Drain(); d.Run()  // deterministic disposal of held envelopes
//
// The engine is single-goroutine like everything else on the simulator's
// event loop; it must not be shared across deployments.
type Engine struct {
	sched *Schedule
	seed  int64
	d     *deploy.Deployment
	trace *telemetry.Tracer
	nodes []*nodeState
	// group is the active partition map (node → group index); nil when
	// the network is whole.
	group []int
	stats EngineStats
}

// nodeState is the engine's per-node wiring. The Switchable persists
// across crash–restart re-wraps so a flipped behavior survives a reboot
// of the same machine (the OS is the adversary, not the enclave).
type nodeState struct {
	sw *adversary.Switchable
	os *adversary.OS
}

// NewEngine builds an engine for the given schedule. seed drives the
// byzantine OS rngs (corruption bits, drain coins); the same (schedule,
// seed) pair replays the identical run.
func NewEngine(sched *Schedule, seed int64) *Engine {
	if sched == nil {
		sched = NewSchedule()
	}
	return &Engine{sched: sched, seed: seed}
}

// Schedule returns the engine's schedule.
func (e *Engine) Schedule() *Schedule { return e.sched }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// OS returns node id's byzantine OS wrapper (nil before Wrap ran for it).
func (e *Engine) OS(id wire.NodeID) *adversary.OS {
	if int(id) >= len(e.nodes) || e.nodes[id] == nil {
		return nil
	}
	return e.nodes[id].os
}

// node returns (creating if needed) the per-node state.
func (e *Engine) node(id wire.NodeID) *nodeState {
	for int(id) >= len(e.nodes) {
		e.nodes = append(e.nodes, nil)
	}
	if e.nodes[id] == nil {
		e.nodes[id] = &nodeState{sw: adversary.NewSwitchable(nil)}
	}
	return e.nodes[id]
}

// Wrap is the deploy.TransportWrapper: it stacks, from the peer down,
// the byzantine OS (behavior flips) over the chaos transport (partition
// cuts) over the genuine port. The partition sits below the OS so that
// even a Released or drained envelope cannot cross an active cut — a
// partition is physics, not policy. Wrap is re-entrant per node:
// deploy.Restart re-wraps a rebooted node and the node keeps its
// Switchable (and thus any flipped behavior).
func (e *Engine) Wrap(id wire.NodeID, tr runtime.Transport) runtime.Transport {
	ns := e.node(id)
	ct := &transport{eng: e, id: id, inner: tr}
	ns.os = adversary.Wrap(id, ct, ns.sw, e.seed^int64(id+1)*0x5ca1ab1e)
	return ns.os
}

// Arm schedules every event of the schedule on the deployment's virtual
// clock, anchored at the current instant as round 1. Call it after
// deploy.New and BEFORE starting the peers: the simulator breaks
// same-instant ties by scheduling order, so arming first guarantees
// every chaos event at a round boundary fires before any peer's round
// tick at that boundary — the ordering the determinism contract rests on.
func (e *Engine) Arm(d *deploy.Deployment) {
	e.d = d
	e.trace = d.Opts.Trace
	t0 := d.Sim.Now()
	rd := d.RoundDuration()
	for _, ev := range e.sched.Events() {
		d.Sim.Schedule(t0+time.Duration(ev.Round-1)*rd, func() { e.apply(ev) })
	}
}

// apply executes one schedule event.
func (e *Engine) apply(ev Event) {
	rnd := uint32(ev.Round)
	switch ev.Kind {
	case KindCrash:
		if e.d.Stop(ev.Node) == nil {
			e.stats.Crashes++
			e.trace.Record(ev.Node, rnd, telemetry.KindCrash, wire.NoNode, 0, "")
		}
	case KindRestart:
		if err := e.d.Restart(ev.Node); err == nil {
			e.stats.Restarts++
			e.trace.Record(ev.Node, rnd, telemetry.KindRestart, wire.NoNode, 0, "")
		} else {
			e.stats.RestartFailures++
			// The deploy errors are fixed sentinels, so the note stays
			// deterministic across runs of the same seed.
			e.trace.Record(ev.Node, rnd, telemetry.KindRestartFail, wire.NoNode, 0, err.Error())
		}
	case KindFlip:
		e.node(ev.Node).sw.Set(ev.Behavior)
		e.stats.Flips++
		label := ev.Label
		if ev.Behavior == nil {
			label = "honest"
		}
		e.trace.Record(ev.Node, rnd, telemetry.KindFlip, wire.NoNode, 0, label)
	case KindPartition:
		group := make([]int, e.d.Opts.N)
		for gi, g := range ev.Groups {
			for _, id := range g {
				if int(id) < len(group) {
					group[id] = gi
				}
			}
		}
		e.group = group
		e.stats.Partitions++
		e.trace.Record(wire.NoNode, rnd, telemetry.KindPartition, wire.NoNode,
			uint64(len(ev.Groups)), groupsString(ev.Groups))
	case KindHeal:
		e.group = nil
		e.stats.Heals++
		e.trace.Record(wire.NoNode, rnd, telemetry.KindHeal, wire.NoNode, 0, "")
	}
}

// cut reports whether an active partition separates a and b.
func (e *Engine) cut(a, b wire.NodeID) bool {
	if e.group == nil {
		return false
	}
	if int(a) >= len(e.group) || int(b) >= len(e.group) {
		return true // a node outside the partition map is unreachable
	}
	return e.group[a] != e.group[b]
}

// Drain disposes of every envelope still held by a delay behavior, node
// by node in id order, each by its OS's own seeded coin — so teardown is
// part of the deterministic trace. Run the simulator once more afterwards
// to let released envelopes settle (they arrive stale and are dropped by
// the lockstep check, but their delivery events are part of the trace).
func (e *Engine) Drain() (released, discarded int) {
	for _, ns := range e.nodes {
		if ns == nil || ns.os == nil {
			continue
		}
		r, d := ns.os.Drain()
		released += r
		discarded += d
	}
	e.stats.DrainReleased += released
	e.stats.DrainDiscarded += discarded
	return released, discarded
}

// transport is the chaos layer of a node's stack: it enforces partition
// cuts in both directions. Crash isolation is handled one layer further
// down (simnet detach via deploy.Stop), so this type stays stateless per
// message.
type transport struct {
	eng   *Engine
	id    wire.NodeID
	inner runtime.Transport
}

var _ runtime.Transport = (*transport)(nil)

// Send implements runtime.Transport, dropping envelopes across a cut.
func (t *transport) Send(dst wire.NodeID, payload []byte) {
	if t.eng.cut(t.id, dst) {
		t.eng.stats.CutDrops++
		return
	}
	t.inner.Send(dst, payload)
}

// SetHandler implements runtime.Transport; deliveries across a cut are
// dropped too, so an envelope already in flight when the partition
// starts does not leak through it.
func (t *transport) SetHandler(h func(src wire.NodeID, payload []byte)) {
	t.inner.SetHandler(func(src wire.NodeID, payload []byte) {
		if t.eng.cut(src, t.id) {
			t.eng.stats.CutDrops++
			return
		}
		h(src, payload)
	})
}

// Detach implements runtime.Transport.
func (t *transport) Detach() { t.inner.Detach() }

// After implements runtime.Transport.
func (t *transport) After(d time.Duration, fn func()) { t.inner.After(d, fn) }

// Now implements runtime.Transport.
func (t *transport) Now() time.Duration { return t.inner.Now() }
