// Package chaos implements a deterministic, seed-driven fault-schedule
// engine for the simulated deployments: crash–restart churn, network
// partitions and mid-run adversary behavior flips, all expressed as a
// reproducible program over lockstep rounds.
//
// A Schedule is compiled by an Engine into per-node transport wrappers
// plus virtual-clock events armed before the peers start. Because the
// simulator orders same-instant events by scheduling sequence, every
// chaos event at a round boundary fires before any peer's round tick at
// that boundary — so "crash node 3 at round 2" means node 3 never
// executes round 2, on every run of the same seed, bit for bit
// (vclock.TraceHash is the witness).
//
// Every fault the schedule can express reduces to the paper's general
// omission model (attacks A1–A5 all surface as omissions), so the ERB/
// ERNG guarantees must hold whenever the schedule's faulty set stays
// within the byzantine bound t. The invariant suite in this package
// checks exactly that over randomized schedules.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/wire"
)

// Kind enumerates schedule event kinds.
type Kind int

// Schedule event kinds.
const (
	// KindCrash stops a node's machine at a round boundary.
	KindCrash Kind = iota + 1
	// KindRestart reboots a crashed node (deploy.Restart).
	KindRestart
	// KindFlip swaps the node's byzantine OS behavior.
	KindFlip
	// KindPartition splits the network into disconnected groups.
	KindPartition
	// KindHeal removes the active partition.
	KindHeal
)

// Event is one entry of a fault schedule, pinned to the start of a
// lockstep round (1-based).
type Event struct {
	Round int
	Kind  Kind
	// Node is the subject of crash/restart/flip events.
	Node wire.NodeID
	// Behavior and Label describe a flip. A nil Behavior flips the node
	// back to honest passthrough.
	Behavior adversary.Behavior
	Label    string
	// Groups is the partition layout: nodes in different groups cannot
	// exchange messages while the partition is active. Nodes listed in
	// no group implicitly belong to group 0.
	Groups [][]wire.NodeID
}

// Schedule is a deterministic fault program over lockstep rounds. Build
// one with the chainable methods below (or Generate) and hand it to
// NewEngine. The zero value is an empty (fault-free) schedule.
type Schedule struct {
	events    []Event
	lastCrash map[wire.NodeID]int
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// add appends an event keeping the slice sorted by round (stable: events
// of the same round apply in insertion order).
func (s *Schedule) add(ev Event) *Schedule {
	i := len(s.events)
	for i > 0 && s.events[i-1].Round > ev.Round {
		i--
	}
	s.events = append(s.events, Event{})
	copy(s.events[i+1:], s.events[i:])
	s.events[i] = ev
	return s
}

// CrashAt stops node's machine at the start of the given round: the node
// executes no round ≥ round until restarted, and the network drops its
// traffic both ways.
func (s *Schedule) CrashAt(node wire.NodeID, round int) *Schedule {
	if s.lastCrash == nil {
		s.lastCrash = make(map[wire.NodeID]int)
	}
	s.lastCrash[node] = round
	return s.add(Event{Round: round, Kind: KindCrash, Node: node})
}

// RestartAfter reboots node the given number of rounds after its most
// recent CrashAt. Without a preceding CrashAt it is ignored. The
// restarted node re-attests and re-derives its session keys but sits out
// the in-flight instance; it participates again from the next epoch.
func (s *Schedule) RestartAfter(node wire.NodeID, rounds int) *Schedule {
	crash, ok := s.lastCrash[node]
	if !ok || rounds < 1 {
		return s
	}
	return s.add(Event{Round: crash + rounds, Kind: KindRestart, Node: node})
}

// FlipBehavior swaps node's byzantine OS behavior at the start of the
// given round. label names the behavior in String(); nil b flips the
// node back to honest passthrough.
func (s *Schedule) FlipBehavior(node wire.NodeID, round int, label string, b adversary.Behavior) *Schedule {
	return s.add(Event{Round: round, Kind: KindFlip, Node: node, Behavior: b, Label: label})
}

// Partition splits the network into the given groups from the start of
// fromRound until the start of toRound (i.e. active during rounds
// fromRound..toRound-1). Nodes not listed in any group belong to group 0.
func (s *Schedule) Partition(groups [][]wire.NodeID, fromRound, toRound int) *Schedule {
	s.add(Event{Round: fromRound, Kind: KindPartition, Groups: groups})
	if toRound > fromRound {
		s.Heal(toRound)
	}
	return s
}

// Heal removes any active partition at the start of the given round.
func (s *Schedule) Heal(round int) *Schedule {
	return s.add(Event{Round: round, Kind: KindHeal})
}

// Events returns the schedule's events in application order.
func (s *Schedule) Events() []Event { return s.events }

// Len returns the number of events.
func (s *Schedule) Len() int { return len(s.events) }

// Faulty returns the sorted set of nodes the schedule makes faulty in a
// network of n nodes: every crashed or flipped node, plus — for each
// partition — every node outside the largest group (the majority side
// keeps the guarantees; the cut-off minority is charged to the fault
// budget, exactly like the general-omission accounting of the paper).
func (s *Schedule) Faulty(n int) []wire.NodeID {
	faulty := make([]bool, n)
	for _, ev := range s.events {
		switch ev.Kind {
		case KindCrash, KindFlip:
			if int(ev.Node) < n {
				faulty[ev.Node] = true
			}
		case KindPartition:
			largest := -1
			size := -1
			for gi, g := range ev.Groups {
				if len(g) > size {
					largest, size = gi, len(g)
				}
			}
			// Nodes in no listed group share group 0's fate; group 0
			// merged with unlisted nodes is only "the largest group" if
			// it is — conservatively charge all listed non-largest
			// groups. Generate always lists the majority explicitly.
			for gi, g := range ev.Groups {
				if gi == largest {
					continue
				}
				for _, id := range g {
					if int(id) < n {
						faulty[id] = true
					}
				}
			}
		}
	}
	out := make([]wire.NodeID, 0, n)
	for id, f := range faulty {
		if f {
			out = append(out, wire.NodeID(id))
		}
	}
	return out
}

// Validate checks the schedule against a network of n nodes and a fault
// budget t: all node ids in range, all rounds ≥ 1, partition groups
// disjoint, and |Faulty| ≤ t.
func (s *Schedule) Validate(n, t int) error {
	for _, ev := range s.events {
		if ev.Round < 1 {
			return fmt.Errorf("chaos: event round %d < 1", ev.Round)
		}
		switch ev.Kind {
		case KindCrash, KindRestart, KindFlip:
			if int(ev.Node) >= n {
				return fmt.Errorf("chaos: node %d out of range (n=%d)", ev.Node, n)
			}
		case KindPartition:
			seen := make([]bool, n)
			for _, g := range ev.Groups {
				for _, id := range g {
					if int(id) >= n {
						return fmt.Errorf("chaos: partition node %d out of range (n=%d)", id, n)
					}
					if seen[id] {
						return fmt.Errorf("chaos: node %d in two partition groups", id)
					}
					seen[id] = true
				}
			}
		}
	}
	if f := len(s.Faulty(n)); f > t {
		return fmt.Errorf("chaos: schedule makes %d nodes faulty, budget t=%d", f, t)
	}
	return nil
}

// String renders the schedule canonically: one token per event in
// application order. Two schedules with equal String() apply the same
// fault program (behaviors are identified by label).
func (s *Schedule) String() string {
	if len(s.events) == 0 {
		return "fault-free"
	}
	toks := make([]string, 0, len(s.events))
	for _, ev := range s.events {
		switch ev.Kind {
		case KindCrash:
			toks = append(toks, fmt.Sprintf("crash(%d)@r%d", ev.Node, ev.Round))
		case KindRestart:
			toks = append(toks, fmt.Sprintf("restart(%d)@r%d", ev.Node, ev.Round))
		case KindFlip:
			label := ev.Label
			if ev.Behavior == nil {
				label = "honest"
			}
			toks = append(toks, fmt.Sprintf("flip(%d,%s)@r%d", ev.Node, label, ev.Round))
		case KindPartition:
			toks = append(toks, fmt.Sprintf("part([%s])@r%d", groupsString(ev.Groups), ev.Round))
		case KindHeal:
			toks = append(toks, fmt.Sprintf("heal@r%d", ev.Round))
		}
	}
	return strings.Join(toks, " ")
}

// groupsString renders a partition layout canonically: groups separated
// by '|', members by spaces ("0 1|2 3"). Shared by Schedule.String and
// the engine's partition trace events.
func groupsString(groups [][]wire.NodeID) string {
	out := make([]string, len(groups))
	for gi, g := range groups {
		ids := make([]string, len(g))
		for i, id := range g {
			ids[i] = fmt.Sprint(id)
		}
		out[gi] = strings.Join(ids, " ")
	}
	return strings.Join(out, "|")
}

// sortIDs sorts a node id slice in place and returns it.
func sortIDs(ids []wire.NodeID) []wire.NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
