package chaos

import (
	"fmt"
	"strings"
	"testing"

	"sgxp2p/internal/wire"
)

// TestMuxERBInvariants sweeps randomized fault schedules against many
// concurrent ERB broadcasts multiplexed over shared links: every one of
// the k instances must independently satisfy agreement, validity,
// integrity and termination on every honest node.
func TestMuxERBInvariants(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 5
	}
	for _, c := range []struct{ n, t, k int }{
		{5, 2, 6},
		{9, 4, 9},
	} {
		for s := 1; s <= seeds; s++ {
			seed := int64(c.n)*20_000 + int64(s)
			o, err := RunMuxERB(seed, c.n, c.t, c.k)
			if err != nil {
				t.Fatalf("seed %d N=%d t=%d k=%d: run failed: %v", seed, c.n, c.t, c.k, err)
			}
			if err := CheckMuxERB(o); err != nil {
				t.Errorf("seed %d N=%d t=%d k=%d: %v", seed, c.n, c.t, c.k, err)
			}
		}
	}
}

// TestMuxTraceDeterministic pins replayability of multiplexed chaos runs:
// the same seed must produce byte-identical event streams, instance
// attribution included.
func TestMuxTraceDeterministic(t *testing.T) {
	a, err := RunMuxERB(31, 5, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMuxERB(31, 5, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.EventsHash != b.EventsHash {
		t.Fatalf("same seed, diverging event streams: %#x vs %#x", a.EventsHash, b.EventsHash)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("same seed, diverging sim traces: %#x vs %#x", a.TraceHash, b.TraceHash)
	}
}

// TestMuxViolationNamesInstance checks the attribution path: when one of
// many concurrent instances misbehaves, the violation error must name
// that instance and embed a flight dump filtered to its events — not the
// interleaved traffic of every neighbor instance.
func TestMuxViolationNamesInstance(t *testing.T) {
	o, err := RunMuxERB(31, 5, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMuxERB(o); err != nil {
		t.Fatalf("clean run failed checks: %v", err)
	}
	faulty := make(map[wire.NodeID]bool)
	for _, id := range o.Faulty {
		faulty[id] = true
	}
	// Tamper the recorded decision of the last honest node for one
	// mid-stream instance, so the check trips on agreement/integrity.
	j := o.K / 2
	inst := o.InstanceIDs[j]
	var node wire.NodeID
	for i := o.N - 1; i >= 0; i-- {
		if !faulty[wire.NodeID(i)] {
			node = wire.NodeID(i)
			break
		}
	}
	o.Decisions[j][node].Value[0] ^= 0xFF
	verr := CheckMuxERB(o)
	if verr == nil {
		t.Fatal("tampered outcome passed CheckMuxERB")
	}
	msg := verr.Error()
	for _, want := range []string{
		fmt.Sprintf("instance %d", inst),
		fmt.Sprintf("flight recorder, node %d, instance %d", node, inst),
		fmt.Sprintf("inst=%d", inst), // filtered flight lines carry the id
		"  r",                        // at least one flight-recorder line
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("violation message missing %q:\n%s", want, msg)
		}
	}
	// The dump is instance-filtered: no line may attribute to a sibling.
	for _, line := range strings.Split(msg, "\n") {
		if !strings.HasPrefix(line, "  r") {
			continue
		}
		for _, other := range o.InstanceIDs {
			if other != inst && strings.Contains(line, fmt.Sprintf("inst=%d", other)) {
				t.Fatalf("flight line attributes to sibling instance %d:\n%s", other, line)
			}
		}
	}
}
