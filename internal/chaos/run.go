package chaos

import (
	"fmt"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// NodeOutcome is one node's view at the end of a chaos run.
type NodeOutcome struct {
	Node wire.NodeID
	// Honest is false for nodes in the schedule's faulty set.
	Honest bool
	// Stopped and Halted report the node's terminal liveness: crashed
	// (and not restarted) vs churned out by halt-on-divergence (P4).
	Stopped, Halted bool
	// Decided is true once the node decided; Accepted distinguishes a
	// real value from bottom (for ERNG it mirrors Result.OK).
	Decided, Accepted bool
	// Value is the decided value (ERB: the broadcast m; ERNG: the common
	// random number). Round is the decision round.
	Value wire.Value
	Round uint32
	// LastRound is the highest lockstep round the node ticked (from the
	// telemetry tracer) — a crashed node's stops short.
	LastRound uint32
}

// Outcome is the full, comparable result of one chaos run. Two runs of
// the same (seed, n, t) are bit-for-bit identical: equal TraceHash,
// equal Fired, equal Nodes.
type Outcome struct {
	Seed    int64
	N, T, F int
	Faulty  []wire.NodeID
	// Schedule is the canonical rendering of the fault program.
	Schedule string
	// Initiator and InitValue describe the (single) ERB broadcast under
	// test; unused for ERNG runs.
	Initiator wire.NodeID
	InitValue wire.Value
	// TraceHash fingerprints the simulator's event interleaving; Fired
	// counts its events.
	TraceHash uint64
	Fired     uint64
	Nodes     []NodeOutcome
	Stats     EngineStats
	// Trace is the run's telemetry tracer — the single event stream every
	// per-node bookkeeping above derives from, exportable as JSONL.
	Trace *telemetry.Tracer
	// Metrics is the run's metric registry (runtime, channel and network
	// counters), exportable in Prometheus text format.
	Metrics *telemetry.Metrics
	// Events and EventsHash summarize the telemetry stream (event count
	// and FNV-1a fingerprint) for cheap outcome comparison.
	Events     uint64
	EventsHash uint64
}

// Repro returns the one-line reproduction hint printed by failing
// invariant checks.
func (o *Outcome) Repro() string {
	return fmt.Sprintf("reproduce with: p2pexp -experiment chaos -chaos-seed %d (N=%d t=%d schedule %s)",
		o.Seed, o.N, o.T, o.Schedule)
}

// RunERB runs one seeded chaos schedule against a single ERB broadcast
// (initiator node 0) on a fresh simulated deployment of n nodes
// tolerating t faults. The schedule is Generate(seed, n, t, t+2).
func RunERB(seed int64, n, t int) (*Outcome, error) {
	return RunERBSchedule(seed, n, t, Generate(seed, n, t, t+2))
}

// RunERBSchedule is RunERB with an explicit schedule.
func RunERBSchedule(seed int64, n, t int, sched *Schedule) (*Outcome, error) {
	if err := sched.Validate(n, t); err != nil {
		return nil, err
	}
	eng := NewEngine(sched, seed)
	trace, metrics := newRunTelemetry()
	d, err := deploy.New(deploy.Options{N: n, T: t, Seed: seed, Wrap: eng.Wrap, Trace: trace, Metrics: metrics})
	if err != nil {
		return nil, err
	}
	eng.Arm(d)

	engines := make([]*erb.Engine, n)
	for i, p := range d.Peers {
		e, eerr := erb.NewEngine(p, erb.Config{
			T:                  t,
			ExpectedInitiators: []wire.NodeID{0},
		})
		if eerr != nil {
			return nil, eerr
		}
		engines[i] = e
	}
	v, err := d.Encls[0].RandomValue()
	if err != nil {
		return nil, err
	}
	engines[0].SetInput(v)
	for i, p := range d.Peers {
		p.Start(engines[i], engines[i].Rounds())
	}
	if err := settle(d, eng); err != nil {
		return nil, err
	}

	o := newOutcome(seed, n, t, sched, d, eng)
	o.InitValue = v
	for i := range o.Nodes {
		no := &o.Nodes[i]
		res, ok := engines[i].Result(0)
		no.Decided = ok
		no.Accepted = res.Accepted
		no.Value = res.Value
		no.Round = res.Round
	}
	return o, nil
}

// RunERNG runs one seeded chaos schedule against an ERNG epoch (basic or
// optimized beacon) on a fresh deployment. The schedule is generated for
// the protocol's own round count.
func RunERNG(seed int64, n, t int, optimized bool) (*Outcome, error) {
	rounds, err := erngRounds(n, t, optimized)
	if err != nil {
		return nil, err
	}
	return RunERNGSchedule(seed, n, t, optimized, Generate(seed, n, t, rounds))
}

// RunERNGSchedule is RunERNG with an explicit schedule (the bias tests
// build targeted omission schedules directly).
func RunERNGSchedule(seed int64, n, t int, optimized bool, sched *Schedule) (*Outcome, error) {
	if err := sched.Validate(n, t); err != nil {
		return nil, err
	}
	eng := NewEngine(sched, seed)
	trace, metrics := newRunTelemetry()
	d, err := deploy.New(deploy.Options{N: n, T: t, Seed: seed, Wrap: eng.Wrap, Trace: trace, Metrics: metrics})
	if err != nil {
		return nil, err
	}
	eng.Arm(d)

	protos := make([]erngProto, n)
	rounds := 0
	for i, p := range d.Peers {
		var proto erngProto
		if optimized {
			proto, err = erng.NewOptimized(p, t, 0, 0)
		} else {
			proto, err = erng.NewBasic(p, t)
		}
		if err != nil {
			return nil, err
		}
		protos[i] = proto
		rounds = proto.Rounds()
	}
	for i, p := range d.Peers {
		p.Start(protos[i], rounds)
	}
	if err := settle(d, eng); err != nil {
		return nil, err
	}

	o := newOutcome(seed, n, t, sched, d, eng)
	for i := range o.Nodes {
		no := &o.Nodes[i]
		res, ok := protos[i].Result()
		no.Decided = ok
		no.Accepted = res.OK
		no.Value = res.Value
		no.Round = res.Round
	}
	return o, nil
}

// newRunTelemetry builds the tracer and registry every chaos run records
// into: the tracer is the single event stream the outcome's per-node
// bookkeeping (LastRound, flight recorders) derives from.
func newRunTelemetry() (*telemetry.Tracer, *telemetry.Metrics) {
	return telemetry.New(telemetry.Options{}), telemetry.NewMetrics()
}

// erngProto is the common surface of the two beacon variants.
type erngProto interface {
	OnRound(rnd uint32)
	OnMessage(msg *wire.Message)
	OnFinish()
	Rounds() int
	Result() (erng.Result, bool)
}

// erngRounds resolves the lockstep round count of a beacon variant.
func erngRounds(n, t int, optimized bool) (int, error) {
	if !optimized {
		return t + 2, nil
	}
	params, err := erng.ResolveParams(n, t, 0, 0)
	if err != nil {
		return 0, err
	}
	return params.Rounds(), nil
}

// settle drains the run to completion: the main protocol window, then the
// deterministic disposal of envelopes still held by delay behaviors, then
// the stale deliveries that disposal produced. All three are part of the
// fingerprinted trace.
func settle(d *deploy.Deployment, eng *Engine) error {
	if err := d.Run(); err != nil {
		return err
	}
	eng.Drain()
	return d.Run()
}

// newOutcome fills the run-level fields common to ERB and ERNG runs.
func newOutcome(seed int64, n, t int, sched *Schedule, d *deploy.Deployment, eng *Engine) *Outcome {
	faulty := sched.Faulty(n)
	isFaulty := make([]bool, n)
	for _, id := range faulty {
		isFaulty[id] = true
	}
	o := &Outcome{
		Seed:       seed,
		N:          n,
		T:          t,
		F:          len(faulty),
		Faulty:     faulty,
		Schedule:   sched.String(),
		TraceHash:  d.Sim.TraceHash(),
		Fired:      d.Sim.FiredCount(),
		Nodes:      make([]NodeOutcome, n),
		Stats:      eng.Stats(),
		Trace:      d.Opts.Trace,
		Metrics:    d.Opts.Metrics,
		Events:     d.Opts.Trace.EventCount(),
		EventsHash: d.Opts.Trace.Hash(),
	}
	for i := range o.Nodes {
		o.Nodes[i] = NodeOutcome{
			Node:      wire.NodeID(i),
			Honest:    !isFaulty[i],
			Stopped:   d.Stopped(wire.NodeID(i)),
			Halted:    d.Peers[i].Halted(),
			LastRound: d.Opts.Trace.LastRound(wire.NodeID(i)),
		}
	}
	return o
}

// CheckERB asserts the paper's ERB properties over the honest nodes of a
// chaos outcome: agreement, validity (honest initiator), integrity, and
// termination within min{f+2, t+2} rounds (bottom by t+3). A nil return
// means every invariant held; the error message embeds the schedule and
// the reproduction hint.
func CheckERB(o *Outcome) error {
	initiatorHonest := true
	for _, id := range o.Faulty {
		if id == o.Initiator {
			initiatorHonest = false
		}
	}
	bound := o.F + 2
	if o.T+2 < bound {
		bound = o.T + 2
	}
	var ref *NodeOutcome
	for i := range o.Nodes {
		no := &o.Nodes[i]
		if !no.Honest {
			continue
		}
		if no.Halted {
			return o.violation("liveness", no.Node, "honest node %d executed halt-on-divergence", no.Node)
		}
		if no.Stopped {
			return o.violation("liveness", no.Node, "honest node %d is stopped", no.Node)
		}
		if !no.Decided {
			return o.violation("termination", no.Node, "honest node %d never decided", no.Node)
		}
		if ref == nil {
			ref = no
		} else if no.Accepted != ref.Accepted || no.Value != ref.Value {
			return o.violation("agreement", no.Node, "honest nodes %d and %d decided differently (accepted=%v/%v)",
				ref.Node, no.Node, ref.Accepted, no.Accepted)
		}
		if no.Accepted {
			if no.Value != o.InitValue {
				return o.violation("integrity", no.Node, "honest node %d accepted a value the initiator never sent", no.Node)
			}
			if int(no.Round) > bound {
				return o.violation("termination", no.Node, "honest node %d accepted at round %d > min{f+2,t+2}=%d",
					no.Node, no.Round, bound)
			}
		} else {
			if int(no.Round) > o.T+3 {
				return o.violation("termination", no.Node, "honest node %d output bottom at round %d > t+3=%d",
					no.Node, no.Round, o.T+3)
			}
			if initiatorHonest {
				return o.violation("validity", no.Node, "honest initiator %d broadcast, honest node %d output bottom",
					o.Initiator, no.Node)
			}
		}
	}
	return nil
}

// CheckERNG asserts agreement and termination of a beacon epoch over the
// honest nodes: every honest node decides, and all honest decisions are
// identical (same OK flag, same random number).
func CheckERNG(o *Outcome) error {
	var ref *NodeOutcome
	for i := range o.Nodes {
		no := &o.Nodes[i]
		if !no.Honest {
			continue
		}
		if no.Halted {
			return o.violation("liveness", no.Node, "honest node %d executed halt-on-divergence", no.Node)
		}
		if !no.Decided {
			return o.violation("termination", no.Node, "honest node %d never decided", no.Node)
		}
		if ref == nil {
			ref = no
		} else if no.Accepted != ref.Accepted || no.Value != ref.Value {
			return o.violation("agreement", no.Node, "honest nodes %d and %d decided different beacon outputs (ok=%v/%v)",
				ref.Node, no.Node, ref.Accepted, no.Accepted)
		}
	}
	return nil
}

// violation formats an invariant failure with the schedule, the repro
// hint, and the offending node's flight-recorder timeline — the exact
// trace that produced the violation.
func (o *Outcome) violation(property string, node wire.NodeID, format string, args ...any) error {
	err := fmt.Errorf("chaos: %s violated: %s — %s", property, fmt.Sprintf(format, args...), o.Repro())
	if flight := o.Trace.FlightString(node, 12); flight != "" {
		err = fmt.Errorf("%w\nflight recorder, node %d (last round %d):\n%s",
			err, node, o.Trace.LastRound(node), flight)
	}
	return err
}
