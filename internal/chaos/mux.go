package chaos

import (
	"fmt"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// muxFlightRing is the per-node flight-recorder capacity of multiplexed
// chaos runs: with many instances interleaving on every node, the default
// ring would hold only the last few events of any single instance, making
// the per-instance violation dumps useless.
const muxFlightRing = 4096

// InstanceDecision is one node's decision for one multiplexed broadcast.
type InstanceDecision struct {
	Decided, Accepted bool
	Value             wire.Value
	// Round is the absolute decision round; StartRound the instance's
	// admission round. Round-StartRound+1 is the instance-relative round
	// the paper's bounds apply to.
	Round      uint32
	StartRound uint32
}

// MuxOutcome is the result of a multiplexed chaos run: K concurrent ERB
// broadcasts over one runtime.Mux per node, under one fault schedule.
type MuxOutcome struct {
	*Outcome
	K int
	// Initiators, InitValues and InstanceIDs describe broadcast j.
	Initiators  []wire.NodeID
	InitValues  []wire.Value
	InstanceIDs []uint32
	// Decisions[j][i] is node i's decision for broadcast j.
	Decisions [][]InstanceDecision
}

// RunMuxERB runs one seeded chaos schedule against k concurrent ERB
// broadcasts (initiators round-robin) multiplexed over a fresh deployment
// of n nodes tolerating t faults.
func RunMuxERB(seed int64, n, t, k int) (*MuxOutcome, error) {
	return RunMuxERBSchedule(seed, n, t, k, Generate(seed, n, t, t+2))
}

// RunMuxERBSchedule is RunMuxERB with an explicit schedule.
func RunMuxERBSchedule(seed int64, n, t, k int, sched *Schedule) (*MuxOutcome, error) {
	if err := sched.Validate(n, t); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("chaos: need at least 1 broadcast, got %d", k)
	}
	eng := NewEngine(sched, seed)
	trace := telemetry.New(telemetry.Options{Ring: muxFlightRing})
	metrics := telemetry.NewMetrics()
	d, err := deploy.New(deploy.Options{N: n, T: t, Seed: seed, Wrap: eng.Wrap, Trace: trace, Metrics: metrics})
	if err != nil {
		return nil, err
	}
	eng.Arm(d)

	initiators := make([]wire.NodeID, k)
	values := make([]wire.Value, k)
	for j := 0; j < k; j++ {
		initiators[j] = wire.NodeID(j % n)
		v, verr := d.Encls[initiators[j]].RandomValue()
		if verr != nil {
			return nil, verr
		}
		values[j] = v
	}

	engines := make([][]*erb.Engine, n)
	handles := make([][]*runtime.Instance, n)
	for i, p := range d.Peers {
		m := runtime.NewMux(p, runtime.MuxConfig{})
		engines[i] = make([]*erb.Engine, k)
		handles[i] = make([]*runtime.Instance, k)
		self := p.ID()
		engs := engines[i]
		for j := 0; j < k; j++ {
			initiator, value, slot := initiators[j], values[j], j
			it, serr := m.Spawn(t+2, func(inst *runtime.Instance) (runtime.Protocol, error) {
				e, eerr := erb.NewEngine(inst, erb.Config{
					T:                  t,
					StartRound:         inst.StartRound(),
					ExpectedInitiators: []wire.NodeID{initiator},
				})
				if eerr != nil {
					return nil, eerr
				}
				if self == initiator {
					e.SetInput(value)
				}
				engs[slot] = e
				return e, nil
			})
			if serr != nil {
				return nil, serr
			}
			handles[i][j] = it
		}
		p.Start(m, m.PlannedRounds())
	}
	if err := settle(d, eng); err != nil {
		return nil, err
	}

	mo := &MuxOutcome{
		Outcome:     newOutcome(seed, n, t, sched, d, eng),
		K:           k,
		Initiators:  initiators,
		InitValues:  values,
		InstanceIDs: make([]uint32, k),
		Decisions:   make([][]InstanceDecision, k),
	}
	for j := 0; j < k; j++ {
		mo.InstanceIDs[j] = handles[0][j].Instance()
		mo.Decisions[j] = make([]InstanceDecision, n)
		for i := 0; i < n; i++ {
			dec := &mo.Decisions[j][i]
			dec.StartRound = handles[i][j].StartRound()
			if engines[i][j] == nil {
				continue
			}
			res, ok := engines[i][j].Result(initiators[j])
			dec.Decided = ok
			dec.Accepted = res.Accepted
			dec.Value = res.Value
			dec.Round = res.Round
		}
	}
	return mo, nil
}

// CheckMuxERB asserts the ERB properties instance by instance over the
// honest nodes of a multiplexed outcome: agreement, validity, integrity
// and termination within min{f+2, t+2} instance-relative rounds for every
// one of the K broadcasts. Violations name the offending instance and
// embed its instance-filtered flight dump.
func CheckMuxERB(o *MuxOutcome) error {
	bound := o.F + 2
	if o.T+2 < bound {
		bound = o.T + 2
	}
	honest := make([]bool, o.N)
	for i := range honest {
		honest[i] = true
	}
	for _, id := range o.Faulty {
		honest[id] = false
	}
	for i := range o.Nodes {
		no := &o.Nodes[i]
		if !no.Honest {
			continue
		}
		if no.Halted {
			return o.violation("liveness", no.Node, "honest node %d executed halt-on-divergence", no.Node)
		}
		if no.Stopped {
			return o.violation("liveness", no.Node, "honest node %d is stopped", no.Node)
		}
	}
	for j := 0; j < o.K; j++ {
		inst := o.InstanceIDs[j]
		initiatorHonest := honest[o.Initiators[j]]
		var ref *InstanceDecision
		var refNode wire.NodeID
		for i := 0; i < o.N; i++ {
			if !honest[i] {
				continue
			}
			dec := &o.Decisions[j][i]
			node := wire.NodeID(i)
			if !dec.Decided {
				return o.violationAt("termination", node, inst, "honest node %d never decided instance %d", node, inst)
			}
			if ref == nil {
				ref, refNode = dec, node
			} else if dec.Accepted != ref.Accepted || dec.Value != ref.Value {
				return o.violationAt("agreement", node, inst,
					"honest nodes %d and %d decided instance %d differently (accepted=%v/%v)",
					refNode, node, inst, ref.Accepted, dec.Accepted)
			}
			rel := dec.Round - (dec.StartRound - 1)
			if dec.Accepted {
				if dec.Value != o.InitValues[j] {
					return o.violationAt("integrity", node, inst,
						"honest node %d accepted a value initiator %d never sent in instance %d",
						node, o.Initiators[j], inst)
				}
				if int(rel) > bound {
					return o.violationAt("termination", node, inst,
						"honest node %d accepted instance %d at relative round %d > min{f+2,t+2}=%d",
						node, inst, rel, bound)
				}
			} else {
				if int(rel) > o.T+3 {
					return o.violationAt("termination", node, inst,
						"honest node %d output bottom for instance %d at relative round %d > t+3=%d",
						node, inst, rel, o.T+3)
				}
				if initiatorHonest {
					return o.violationAt("validity", node, inst,
						"honest initiator %d broadcast instance %d, honest node %d output bottom",
						o.Initiators[j], inst, node)
				}
			}
		}
	}
	return nil
}

// violationAt is violation with an instance attribution: the embedded
// flight dump is filtered to the offending instance's events, so the
// evidence names one broadcast's timeline instead of the interleaved
// traffic of every concurrent neighbor.
func (o *Outcome) violationAt(property string, node wire.NodeID, instance uint32, format string, args ...any) error {
	err := fmt.Errorf("chaos: %s violated: %s — %s", property, fmt.Sprintf(format, args...), o.Repro())
	if flight := o.Trace.FlightInstanceString(node, instance, 12); flight != "" {
		err = fmt.Errorf("%w\nflight recorder, node %d, instance %d (last round %d):\n%s",
			err, node, instance, o.Trace.LastRound(node), flight)
	}
	return err
}
