package chaos

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// exportTrace renders an outcome's telemetry stream as JSONL bytes.
func exportTrace(t *testing.T, o *Outcome) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := o.Trace.ExportJSONL(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// TestTraceDeterministic replays the same chaos seed twice per cluster
// size and requires byte-identical JSONL exports — the property
// `p2ptrace -diff` and the obs-smoke target stand on.
func TestTraceDeterministic(t *testing.T) {
	for _, tc := range erbCases {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("erb/n%d/seed%d", tc.n, seed), func(t *testing.T) {
				a, err := RunERB(seed, tc.n, tc.t)
				if err != nil {
					t.Fatal(err)
				}
				b, err := RunERB(seed, tc.n, tc.t)
				if err != nil {
					t.Fatal(err)
				}
				ja, jb := exportTrace(t, a), exportTrace(t, b)
				if len(ja) == 0 {
					t.Fatal("empty trace")
				}
				if !bytes.Equal(ja, jb) {
					line, la, lb, _ := telemetry.DiffLines(bytes.NewReader(ja), bytes.NewReader(jb))
					t.Fatalf("same seed diverged at line %d:\n  %s\n  %s", line, la, lb)
				}
				if a.Trace.Hash() != b.Trace.Hash() {
					t.Fatal("equal traces, unequal hashes")
				}
			})
		}
	}

	// ERNG paths share the tracer plumbing but exercise the beacon kinds.
	for _, optimized := range []bool{false, true} {
		t.Run(fmt.Sprintf("erng/opt=%v", optimized), func(t *testing.T) {
			a, err := RunERNG(5, 9, 2, optimized)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunERNG(5, 9, 2, optimized)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(exportTrace(t, a), exportTrace(t, b)) {
				t.Fatal("same seed diverged")
			}
		})
	}
}

// TestTraceSeedsDiverge is the sanity converse: different seeds must not
// produce the same stream (a constant trace would vacuously pass the
// determinism test).
func TestTraceSeedsDiverge(t *testing.T) {
	a, err := RunERB(1, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunERB(2, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(exportTrace(t, a), exportTrace(t, b)) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTraceValidates runs every exported trace through the strict
// validator: schema, known kinds, monotone timestamps.
func TestTraceValidates(t *testing.T) {
	o, err := RunERB(7, 9, 4) // seed 7 schedules a crash and restart
	if err != nil {
		t.Fatal(err)
	}
	raw := exportTrace(t, o)
	count, err := telemetry.ValidateJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(count) != o.Events {
		t.Fatalf("validated %d events, outcome says %d", count, o.Events)
	}
	if o.Stats.Crashes == 0 || o.Stats.Restarts == 0 {
		t.Fatalf("seed 7 no longer schedules crash+restart: %+v", o.Stats)
	}
	// The schedule's faults appear in the stream as their telemetry kinds.
	text := string(raw)
	for _, want := range []string{`"kind":"crash"`, `"kind":"restart"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("trace missing %s", want)
		}
	}
}

// TestViolationDumpsFlight checks the failure path: an invariant
// violation's error message must name the node, its last round, and
// include its flight-recorder timeline.
func TestViolationDumpsFlight(t *testing.T) {
	o, err := RunERB(11, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	var node wire.NodeID
	for _, no := range o.Nodes {
		if no.LastRound > 0 {
			node = no.Node
			break
		}
	}
	verr := o.violation("agreement", node, "synthetic failure on node %d", node)
	msg := verr.Error()
	wantHeader := fmt.Sprintf("flight recorder, node %d (last round %d):", node, o.Trace.LastRound(node))
	for _, want := range []string{
		"chaos: agreement violated",
		fmt.Sprintf("synthetic failure on node %d", node),
		wantHeader,
		"  r", // at least one flight-recorder line
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("violation message missing %q:\n%s", want, msg)
		}
	}
}
