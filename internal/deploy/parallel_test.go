package deploy_test

import (
	"reflect"
	"testing"

	"sgxp2p/internal/deploy"
	"sgxp2p/internal/wire"
)

// TestDeploymentIdenticalAcrossWorkerCounts pins the determinism contract
// of the parallel setup: for a fixed seed, a deployment built serially
// (Workers=1) and one built with many workers are indistinguishable —
// same quotes, same protocol outcome, same wire traffic.
func TestDeploymentIdenticalAcrossWorkerCounts(t *testing.T) {
	build := func(workers int) (*deploy.Deployment, error) {
		return deploy.New(deploy.Options{N: 16, T: 7, Seed: 42, Workers: workers})
	}
	serial, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel8, err := build(8)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.Roster.Quotes, parallel8.Roster.Quotes) {
		t.Fatal("rosters differ between worker counts")
	}
	for id := wire.NodeID(0); int(id) < 16; id++ {
		for peer := 0; peer < 16; peer++ {
			if serial.Peers[peer].SeqOf(id) != parallel8.Peers[peer].SeqOf(id) {
				t.Fatalf("seq table differs at peer %d id %d", peer, id)
			}
		}
	}

	resSerial := broadcast(t, serial, 3, wire.Value{0xCA})
	resParallel := broadcast(t, parallel8, 3, wire.Value{0xCA})
	if !reflect.DeepEqual(resSerial, resParallel) {
		t.Fatalf("broadcast results differ:\nserial:   %v\nparallel: %v", resSerial, resParallel)
	}
	ts, tp := serial.Net.Traffic(), parallel8.Net.Traffic()
	if ts != tp {
		t.Fatalf("traffic differs: serial %+v parallel %+v", ts, tp)
	}
}

// TestRealCryptoParallelDeploy exercises the parallel construction with
// the real ECDH derivations and sealer (the heavier path the worker pool
// exists for).
func TestRealCryptoParallelDeploy(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 8, T: 3, Seed: 5, RealCrypto: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := broadcast(t, d, 0, wire.Value{0x1F})
	for id, r := range res {
		if !r.Accepted || r.Value != (wire.Value{0x1F}) {
			t.Fatalf("node %d: %+v", id, r)
		}
	}
}
