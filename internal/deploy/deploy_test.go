package deploy_test

import (
	"testing"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

func newDeployment(t *testing.T, n, byz int, seed int64) *deploy.Deployment {
	t.Helper()
	d, err := deploy.New(deploy.Options{N: n, T: byz, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// broadcast runs one ERB instance across all live peers and returns the
// honest results by node id.
func broadcast(t *testing.T, d *deploy.Deployment, initiator wire.NodeID, v wire.Value) map[wire.NodeID]erb.Result {
	t.Helper()
	engines := make([]*erb.Engine, len(d.Peers))
	for i, p := range d.Peers {
		if p.Halted() {
			continue
		}
		eng, err := erb.NewEngine(p, erb.Config{T: d.Opts.T, ExpectedInitiators: []wire.NodeID{initiator}})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	if engines[initiator] != nil {
		engines[initiator].SetInput(v)
	}
	for i, p := range d.Peers {
		if engines[i] != nil {
			p.Start(engines[i], engines[i].Rounds())
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	out := make(map[wire.NodeID]erb.Result)
	for i, eng := range engines {
		if eng == nil {
			continue
		}
		if res, ok := eng.Result(initiator); ok {
			out[wire.NodeID(i)] = res
		}
	}
	for i, p := range d.Peers {
		if engines[i] != nil {
			p.BumpSeqs()
		}
	}
	return out
}

func TestJoinExtendsMembership(t *testing.T) {
	d := newDeployment(t, 5, 2, 61)
	newID, err := d.Join(deploy.JoinOptions{Sponsor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if newID != 5 {
		t.Fatalf("new id = %d, want 5", newID)
	}
	if len(d.Peers) != 6 || d.Peers[5].N() != 6 {
		t.Fatalf("membership not extended: %d peers, N=%d", len(d.Peers), d.Peers[5].N())
	}
	for i, p := range d.Peers {
		if p.N() != 6 {
			t.Fatalf("peer %d sees N=%d, want 6", i, p.N())
		}
	}
	// The joined node participates in the next broadcast, both ways.
	v := wire.Value{0x61}
	results := broadcast(t, d, 5, v)
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	for id, res := range results {
		if !res.Accepted || res.Value != v {
			t.Fatalf("node %d after join: %+v", id, res)
		}
	}
}

func TestJoinSeveralNodes(t *testing.T) {
	d := newDeployment(t, 4, 1, 62)
	for k := 0; k < 3; k++ {
		if _, err := d.Join(deploy.JoinOptions{Sponsor: wire.NodeID(k % 4)}); err != nil {
			t.Fatalf("join %d: %v", k, err)
		}
	}
	if len(d.Peers) != 7 {
		t.Fatalf("peers = %d, want 7", len(d.Peers))
	}
	v := wire.Value{0x62}
	results := broadcast(t, d, 6, v)
	for id, res := range results {
		if !res.Accepted || res.Value != v {
			t.Fatalf("node %d: %+v", id, res)
		}
	}
}

func TestJoinWithPuzzle(t *testing.T) {
	d := newDeployment(t, 4, 1, 63)
	newID, err := d.Join(deploy.JoinOptions{Sponsor: 0, PuzzleDifficulty: 8})
	if err != nil {
		t.Fatal(err)
	}
	if newID != 4 {
		t.Fatalf("new id = %d", newID)
	}
}

func TestJoinRejectedWhenSponsorOmits(t *testing.T) {
	// A byzantine sponsor whose OS drops everything cannot admit anyone:
	// the ERB announcement decides bottom everywhere.
	d, err := deploy.New(deploy.Options{
		N: 5, T: 2, Seed: 64,
		Wrap: func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
			if id != 0 {
				return tr
			}
			return adversary.Wrap(id, tr, adversary.OmitAll(), 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Join(deploy.JoinOptions{Sponsor: 0}); err != deploy.ErrJoinRejected {
		t.Fatalf("join via omitting sponsor: %v, want ErrJoinRejected", err)
	}
	// The network remains consistent and usable.
	for i := 1; i < 5; i++ {
		if d.Peers[i].N() != 5 {
			t.Fatalf("peer %d sees N=%d after failed join", i, d.Peers[i].N())
		}
	}
}

func TestJoinValidation(t *testing.T) {
	d := newDeployment(t, 4, 1, 65)
	if _, err := d.Join(deploy.JoinOptions{Sponsor: 99}); err == nil {
		t.Error("out-of-range sponsor accepted")
	}
	d.Peers[2].HaltSelf()
	if _, err := d.Join(deploy.JoinOptions{Sponsor: 2}); err == nil {
		t.Error("halted sponsor accepted")
	}
}

func TestJoinSeqConsistency(t *testing.T) {
	d := newDeployment(t, 4, 1, 66)
	// Run a couple of epochs first so the seq tables have history.
	broadcast(t, d, 0, wire.Value{1})
	broadcast(t, d, 1, wire.Value{2})
	newID, err := d.Join(deploy.JoinOptions{Sponsor: 3})
	if err != nil {
		t.Fatal(err)
	}
	for id := wire.NodeID(0); int(id) < len(d.Peers); id++ {
		want := d.Peers[0].SeqOf(id)
		if got := d.Peers[newID].SeqOf(id); got != want {
			t.Fatalf("joiner seq of %d = %d, want %d", id, got, want)
		}
	}
	if d.Peers[newID].Instance() != d.Peers[0].Instance() {
		t.Fatalf("joiner instance %d, network %d", d.Peers[newID].Instance(), d.Peers[0].Instance())
	}
}
