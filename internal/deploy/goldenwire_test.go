package deploy_test

import (
	"testing"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// Golden FNV-1a fingerprints over every (src, dst, envelope) triple a
// seeded deployment emits, in send order, recorded on the pre-coalescing
// tree (PR 5). With batching disabled the runtime must keep producing
// exactly these envelope streams: same frames, same bytes, same order.
// A change here means the unbatched wire format or send schedule drifted
// from the pre-PR tree, which the coalescing PR promised not to do.
const (
	goldenERBWireHash  uint64 = 0xe35a6cd01d546f71
	goldenERNGWireHash uint64 = 0x7aad6278c717c365
)

// wireHasher is a TransportWrapper hook folding every outbound envelope
// into a shared FNV-1a hash. The simulation is single-threaded, so send
// order (and therefore the fold order) is deterministic for a seed.
type wireHasher struct {
	h uint64
}

func newWireHasher() *wireHasher {
	return &wireHasher{h: 14695981039346656037}
}

func (w *wireHasher) fold(b byte) {
	w.h = (w.h ^ uint64(b)) * 1099511628211
}

func (w *wireHasher) foldU32(x uint32) {
	for i := 0; i < 4; i++ {
		w.fold(byte(x))
		x >>= 8
	}
}

func (w *wireHasher) record(src, dst wire.NodeID, payload []byte) {
	w.foldU32(uint32(src))
	w.foldU32(uint32(dst))
	w.foldU32(uint32(len(payload)))
	for _, b := range payload {
		w.fold(b)
	}
}

// Wrap returns the deploy.TransportWrapper installing the recorder.
func (w *wireHasher) Wrap(id wire.NodeID, tr runtime.Transport) runtime.Transport {
	return &hashingTransport{Transport: tr, id: id, rec: w}
}

type hashingTransport struct {
	runtime.Transport
	id  wire.NodeID
	rec *wireHasher
}

func (t *hashingTransport) Send(dst wire.NodeID, payload []byte) {
	t.rec.record(t.id, dst, payload)
	t.Transport.Send(dst, payload)
}

// runGoldenERB replays the reference ERB scenario: N=5, T=2, seed 1,
// initiator 0 broadcasting a fixed value, full round budget.
func runGoldenERB(t *testing.T, opts deploy.Options) uint64 {
	t.Helper()
	rec := newWireHasher()
	opts.N, opts.T, opts.Seed = 5, 2, 1
	opts.Wrap = rec.Wrap
	d, err := deploy.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*erb.Engine, len(d.Peers))
	for i, p := range d.Peers {
		eng, eerr := erb.NewEngine(p, erb.Config{T: 2, ExpectedInitiators: []wire.NodeID{0}})
		if eerr != nil {
			t.Fatal(eerr)
		}
		engines[i] = eng
	}
	engines[0].SetInput(wire.Value{0xAB, 0xCD, 0xEF})
	for i, p := range d.Peers {
		p.Start(engines[i], engines[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		if res, ok := eng.Result(0); !ok || !res.Accepted {
			t.Fatalf("node %d did not accept the golden broadcast", i)
		}
	}
	return rec.h
}

// runGoldenERNG replays the reference basic-ERNG scenario: N=5, T=2,
// seed 3 (all five nodes initiate concurrently — the batching-heavy
// traffic shape).
func runGoldenERNG(t *testing.T, opts deploy.Options) uint64 {
	t.Helper()
	rec := newWireHasher()
	opts.N, opts.T, opts.Seed = 5, 2, 3
	opts.Wrap = rec.Wrap
	d, err := deploy.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*erng.Basic, len(d.Peers))
	rounds := 0
	for i, p := range d.Peers {
		proto, perr := erng.NewBasic(p, 2)
		if perr != nil {
			t.Fatal(perr)
		}
		protos[i] = proto
		rounds = proto.Rounds()
	}
	for i, p := range d.Peers {
		p.Start(protos[i], rounds)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i, proto := range protos {
		if res, ok := proto.Result(); !ok || !res.OK {
			t.Fatalf("node %d produced no ERNG output", i)
		}
	}
	return rec.h
}

// TestUnbatchedWireStreamGolden pins the batching-disabled wire stream to
// the pre-coalescing tree, byte for byte.
func TestUnbatchedWireStreamGolden(t *testing.T) {
	opts := deploy.Options{DisableBatching: true}
	if got := runGoldenERB(t, opts); got != goldenERBWireHash {
		t.Errorf("ERB unbatched wire hash %#x, want %#x (unbatched envelope stream drifted from pre-PR tree)", got, goldenERBWireHash)
	}
	if got := runGoldenERNG(t, opts); got != goldenERNGWireHash {
		t.Errorf("ERNG unbatched wire hash %#x, want %#x (unbatched envelope stream drifted from pre-PR tree)", got, goldenERNGWireHash)
	}
}
