package deploy

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/sybil"
	"sgxp2p/internal/wire"
)

// Join errors.
var (
	// ErrJoinRejected indicates the sponsor's ERB announcement was not
	// accepted by the network (byzantine sponsor, or partition).
	ErrJoinRejected = errors.New("deploy: join announcement not accepted")
	// ErrJoinPuzzle indicates a join attempt without a valid sybil
	// puzzle solution.
	ErrJoinPuzzle = errors.New("deploy: invalid sybil puzzle solution")
)

// JoinOptions configures one dynamic join.
type JoinOptions struct {
	// Sponsor is the existing node that announces the joiner via ERB.
	Sponsor wire.NodeID
	// PuzzleDifficulty, when positive, requires the joiner to solve a
	// sybil puzzle bound to its quote before the network admits it
	// (Appendix G, assumption S4).
	PuzzleDifficulty int
	// Wrap optionally wraps the new node's transport (byzantine joiner).
	Wrap TransportWrapper
}

// quoteDigest canonically hashes a joiner's quote and initial sequence
// number — the value the sponsor reliably broadcasts (the join pair of
// Appendix G).
func quoteDigest(q enclave.Quote, seq uint64) wire.Value {
	h := sha256.New()
	h.Write([]byte("sgxp2p/join/v1/"))
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], uint32(q.NodeID))
	h.Write(idb[:])
	h.Write(q.Measurement[:])
	h.Write(q.DHPublic[:])
	h.Write(q.Signature)
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seq)
	h.Write(sb[:])
	var out wire.Value
	copy(out[:], h.Sum(nil))
	return out
}

// Join implements the dynamic-membership extension of Appendix G: a new
// node is launched and attested, solves the sybil puzzle if required, a
// sponsor reliably broadcasts the (quote, seq) digest through ERB, and on
// acceptance every live node verifies the quote against the digest and
// admits the joiner. The joiner receives the membership and sequence
// table and becomes a full peer. Returns the new node's id.
func (d *Deployment) Join(opts JoinOptions) (wire.NodeID, error) {
	if int(opts.Sponsor) >= len(d.Peers) {
		return wire.NoNode, fmt.Errorf("deploy: sponsor %d out of range", opts.Sponsor)
	}
	if d.Peers[opts.Sponsor].Halted() {
		return wire.NoNode, fmt.Errorf("deploy: sponsor %d has been churned out", opts.Sponsor)
	}

	// Launch and attest the joiner's enclave.
	newID := d.Net.AddNode()
	rng := rand.New(rand.NewSource(d.Opts.Seed ^ int64(newID+1)*0x9E3779B9))
	encl, err := enclave.Launch(d.Opts.Program, newID, rng, simClock{sim: d.Sim}, d.enclaveOptions()...)
	if err != nil {
		return wire.NoNode, fmt.Errorf("deploy: joiner enclave: %w", err)
	}
	quote := d.Service.Attest(encl)
	seq, err := encl.RandomSeq()
	if err != nil {
		return wire.NoNode, err
	}
	digest := quoteDigest(quote, seq)

	// Sybil defence: the joiner pays for admission with a proof of work
	// bound to its attested identity.
	if opts.PuzzleDifficulty > 0 {
		puzzle := d.joinPuzzle(digest, opts.PuzzleDifficulty)
		nonce, perr := puzzle.Solve(0)
		if perr != nil {
			return wire.NoNode, fmt.Errorf("deploy: joiner could not solve puzzle: %w", perr)
		}
		// Every admitting node re-verifies (here once: the deployment is
		// the honest verifier the paper's peers each implement).
		if puzzle.Verify(nonce) != nil {
			return wire.NoNode, ErrJoinPuzzle
		}
	}

	// The sponsor reliably broadcasts the join pair to the current
	// membership.
	live := make([]int, 0, len(d.Peers))
	engines := make([]*erb.Engine, len(d.Peers))
	for i, p := range d.Peers {
		if p.Halted() {
			continue
		}
		eng, eerr := erb.NewEngine(p, erb.Config{
			T:                  d.Opts.T,
			ExpectedInitiators: []wire.NodeID{opts.Sponsor},
		})
		if eerr != nil {
			return wire.NoNode, eerr
		}
		engines[i] = eng
		live = append(live, i)
	}
	engines[opts.Sponsor].SetInput(digest)
	for _, i := range live {
		d.Peers[i].Start(engines[i], engines[i].Rounds())
	}
	if rerr := d.Sim.Run(); rerr != nil {
		return wire.NoNode, rerr
	}

	// Admission: nodes whose broadcast decision matched the digest verify
	// the quote and extend their membership.
	admitted := 0
	for _, i := range live {
		res, ok := engines[i].Result(opts.Sponsor)
		if !ok || !res.Accepted || res.Value != digest {
			continue
		}
		if aerr := d.Peers[i].AddPeer(d.Roster, quote, seq); aerr != nil {
			return wire.NoNode, fmt.Errorf("deploy: node %d admit: %w", i, aerr)
		}
		admitted++
	}
	for _, i := range live {
		d.Peers[i].BumpSeqs()
	}
	if admitted == 0 {
		return wire.NoNode, ErrJoinRejected
	}

	// Build the joiner's peer with the full roster and the post-bump
	// sequence table copied from the sponsor's enclave state.
	newRoster := d.Roster
	newRoster.Quotes = append(append([]enclave.Quote(nil), d.Roster.Quotes...), quote)
	var tr runtime.Transport = d.Net.Port(newID)
	if opts.Wrap != nil {
		tr = opts.Wrap(newID, tr)
	}
	peer, err := runtime.NewPeer(encl, tr, newRoster, runtime.Config{
		N:               len(newRoster.Quotes),
		T:               d.Opts.T,
		Delta:           d.Opts.Delta,
		Sealer:          d.newSealer(),
		Trace:           d.Opts.Trace,
		Metrics:         d.Opts.Metrics,
		DisableBatching: d.Opts.DisableBatching,
	})
	if err != nil {
		return wire.NoNode, fmt.Errorf("deploy: joiner peer: %w", err)
	}
	seqs := make([]uint64, len(newRoster.Quotes))
	for i := range d.Peers {
		seqs[i] = d.Peers[opts.Sponsor].SeqOf(wire.NodeID(i))
	}
	seqs[newID] = seq + 1 // the join instance bumped everyone, the joiner included
	if err := peer.InstallSeqs(seqs); err != nil {
		return wire.NoNode, err
	}
	peer.AlignInstance(d.Peers[opts.Sponsor].Instance())

	d.Roster = newRoster
	d.Encls = append(d.Encls, encl)
	d.Peers = append(d.Peers, peer)
	d.stopped = append(d.stopped, false)
	d.Opts.N++
	return newID, nil
}

// joinPuzzle builds the admission puzzle for a joiner: the challenge is
// derived from the deployment seed and the current membership size, the
// binding is the joiner's quote digest.
func (d *Deployment) joinPuzzle(binding wire.Value, difficulty int) sybil.Puzzle {
	var p sybil.Puzzle
	h := sha256.New()
	h.Write([]byte("sgxp2p/join-challenge/"))
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(d.Opts.Seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(len(d.Peers)))
	h.Write(b[:])
	copy(p.Challenge[:], h.Sum(nil))
	p.Binding = binding[:]
	p.Difficulty = difficulty
	return p
}

// enclaveOptions mirrors the option selection of New, including the
// deployment-wide key cache so a joiner's N link derivations reuse the
// halves already computed by the existing members.
func (d *Deployment) enclaveOptions() []enclave.Option {
	opts := []enclave.Option{}
	if d.keyCache != nil {
		opts = append(opts, enclave.WithKeyCache(d.keyCache))
	}
	if !d.Opts.RealCrypto {
		opts = append(opts, enclave.WithModelKEX())
	}
	return opts
}
