package deploy_test

import (
	"reflect"
	"testing"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/wire"
)

// TestCrashRestartRederivesSessionKeys is the crash–restart regression:
// a node stopped mid-epoch and rebooted re-attests with the identical
// quote and re-derives the identical pairwise session keys through the
// deployment key cache, so the surviving nodes' already-established
// links keep working without renegotiation — and the in-flight broadcast
// settles among the survivors while the node is down.
func TestCrashRestartRederivesSessionKeys(t *testing.T) {
	d := newDeployment(t, 5, 1, 424)

	keysBefore, err := d.Encls[3].SessionKeys(d.Encls[0].DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	quoteBefore := d.Roster.Quotes[3]
	cacheBefore := d.KeyCacheLen()
	if cacheBefore == 0 {
		t.Fatal("key cache empty after deployment setup")
	}

	// Epoch 1: broadcast from node 0; node 3's machine dies mid-round-2.
	v1 := wire.Value{0xC4}
	engines := make([]*erb.Engine, len(d.Peers))
	for i, p := range d.Peers {
		eng, err := erb.NewEngine(p, erb.Config{T: d.Opts.T, ExpectedInitiators: []wire.NodeID{0}})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	engines[0].SetInput(v1)
	d.Sim.Schedule(d.Sim.Now()+3*d.Opts.Delta, func() {
		if err := d.Stop(3); err != nil {
			t.Errorf("mid-epoch stop: %v", err)
		}
	})
	for i, p := range d.Peers {
		p.Start(engines[i], engines[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if !d.Stopped(3) {
		t.Fatal("node 3 not stopped after scheduled crash")
	}
	for i, eng := range engines {
		if i == 3 {
			continue
		}
		res, ok := eng.Result(0)
		if !ok || !res.Accepted || res.Value != v1 {
			t.Fatalf("survivor %d: in-flight broadcast did not settle: ok=%v res=%+v", i, ok, res)
		}
	}

	// Reboot. Same deployment seed ⇒ same enclave rng stream ⇒ same DH
	// keypair ⇒ identical quote and, via the key cache, identical session
	// keys — no cache growth, no renegotiation.
	if err := d.Restart(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if d.Stopped(3) {
		t.Fatal("node 3 still marked stopped after restart")
	}
	if !reflect.DeepEqual(d.Roster.Quotes[3], quoteBefore) {
		t.Fatal("restarted node re-attested with a different quote")
	}
	if got := d.KeyCacheLen(); got != cacheBefore {
		t.Fatalf("key cache grew across restart: %d -> %d (keys were re-derived, not re-used)", cacheBefore, got)
	}
	keysAfter, err := d.Encls[3].SessionKeys(d.Encls[0].DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	if keysAfter != keysBefore {
		t.Fatal("restarted enclave derived different session keys")
	}

	// Epoch 2: the restarted node participates fully — its fresh links
	// must interoperate with the survivors' original cipher state in both
	// directions, and its copied sequence table must pass freshness.
	for _, p := range d.Peers {
		p.BumpSeqs()
	}
	v2 := wire.Value{0xAF}
	results := broadcast(t, d, 3, v2)
	for i := 0; i < len(d.Peers); i++ {
		res, ok := results[wire.NodeID(i)]
		if !ok || !res.Accepted || res.Value != v2 {
			t.Fatalf("node %d after restart: ok=%v res=%+v", i, ok, res)
		}
	}
}

// TestRestartValidation covers the lifecycle error paths.
func TestRestartValidation(t *testing.T) {
	d := newDeployment(t, 4, 1, 7)
	if err := d.Restart(2); err != deploy.ErrNotStopped {
		t.Fatalf("restart of running node: %v, want ErrNotStopped", err)
	}
	if err := d.Stop(9); err == nil {
		t.Fatal("stop of out-of-range node succeeded")
	}
	if err := d.Stop(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Stop(2); err != nil {
		t.Fatalf("double stop must be a no-op: %v", err)
	}
	if !d.Stopped(2) || d.Stopped(0) {
		t.Fatal("Stopped() bookkeeping wrong")
	}
}

// TestRestartNeedsLivePeer: with every other node stopped there is nobody
// to copy the sequence table from.
func TestRestartNeedsLivePeer(t *testing.T) {
	d := newDeployment(t, 4, 1, 11)
	for id := 0; id < 4; id++ {
		if err := d.Stop(wire.NodeID(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Restart(0); err != deploy.ErrNoLivePeer {
		t.Fatalf("restart with no live peers: %v, want ErrNoLivePeer", err)
	}
}

// TestRealCryptoRestart repeats the key-identity assertion with the real
// AES+HMAC sealer and real key exchange.
func TestRealCryptoRestart(t *testing.T) {
	d, err := deploy.New(deploy.Options{N: 4, T: 1, Seed: 99, RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}
	keysBefore, err := d.Encls[1].SessionKeys(d.Encls[2].DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Stop(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart(1); err != nil {
		t.Fatal(err)
	}
	keysAfter, err := d.Encls[1].SessionKeys(d.Encls[2].DHPublic())
	if err != nil {
		t.Fatal(err)
	}
	if keysAfter != keysBefore {
		t.Fatal("real-crypto restart derived different session keys")
	}
	res := broadcast(t, d, 1, wire.Value{0x42})
	for i := 0; i < 4; i++ {
		if r, ok := res[wire.NodeID(i)]; !ok || !r.Accepted {
			t.Fatalf("node %d: broadcast after real-crypto restart failed: %+v", i, r)
		}
	}
}
