package deploy

import (
	"errors"
	"fmt"
	"math/rand"

	"sgxp2p/internal/channel"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/overlay"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// Lifecycle errors.
var (
	// ErrNotStopped indicates a Restart of a node that is still running.
	ErrNotStopped = errors.New("deploy: node is not stopped")
	// ErrNoLivePeer indicates a Restart with no live node left to copy
	// the sequence table from.
	ErrNoLivePeer = errors.New("deploy: no live peer to copy state from")
)

// newSealer returns a fresh sealer matching the deployment's crypto mode.
// Sealers hold per-link cipher state, so every peer needs its own.
func (d *Deployment) newSealer() channel.Sealer {
	if d.Opts.RealCrypto {
		return channel.RealSealer{}
	}
	return channel.NewModelSealer()
}

// buildTransport assembles one node's transport stack: network port, the
// optional adversary wrap, the optional overlay router on top. Used by
// New for the initial membership and by Restart to rebuild a crashed
// node's stack.
func (d *Deployment) buildTransport(id wire.NodeID) (runtime.Transport, error) {
	var tr runtime.Transport = d.Net.Port(id)
	if d.Opts.Wrap != nil {
		tr = d.Opts.Wrap(id, tr)
	}
	if d.Opts.Neighbors != nil {
		router, err := overlay.NewRouter(id, d.Opts.Neighbors(id, d.Opts.N), tr, 0)
		if err != nil {
			return nil, fmt.Errorf("deploy: overlay router %d: %w", id, err)
		}
		tr = router
	}
	return tr, nil
}

// KeyCacheLen returns the number of pair derivations memoized in the
// deployment-wide session-key cache. A crash–restart must not change it:
// the rebooted enclave re-derives the identical pairwise keys and hits
// the existing entries.
func (d *Deployment) KeyCacheLen() int {
	if d.keyCache == nil {
		return 0
	}
	return d.keyCache.Len()
}

// Stop crashes a node: the machine goes away mid-protocol. The peer stops
// ticking rounds, the network drops its traffic in both directions, and —
// unlike a halted enclave (P4) — nothing is burned: the node may later be
// brought back with Restart. Stopping an already-stopped node is a no-op.
func (d *Deployment) Stop(id wire.NodeID) error {
	if int(id) >= len(d.Peers) {
		return fmt.Errorf("deploy: stop: node %d out of range", id)
	}
	if d.stopped[id] {
		return nil
	}
	d.Peers[id].Stop()
	d.Net.Detach(id)
	d.stopped[id] = true
	return nil
}

// Stopped reports whether a node is currently crashed.
func (d *Deployment) Stopped(id wire.NodeID) bool {
	return int(id) < len(d.stopped) && d.stopped[id]
}

// Restart brings a crashed node back: the machine reboots, relaunches its
// enclave and re-joins the network. Because the enclave's randomness
// derives deterministically from the deployment seed and the node id, the
// reboot replays the identical key material — the same X25519 keypair,
// hence (via the deployment key cache) the very same pairwise session
// keys, so the surviving nodes' blinded channels remain valid without any
// re-establishment. The re-attested quote is byte-identical for the same
// reason (Ed25519 signing is deterministic).
//
// The restarted peer copies the sequence table and instance counter from
// the lowest-id live node, exactly like a dynamic joiner (join.go), and
// participates again from the next epoch; it does not rejoin a protocol
// instance already in flight.
func (d *Deployment) Restart(id wire.NodeID) error {
	if int(id) >= len(d.Peers) {
		return fmt.Errorf("deploy: restart: node %d out of range", id)
	}
	if !d.stopped[id] {
		return ErrNotStopped
	}
	sponsor := -1
	for i, p := range d.Peers {
		if i != int(id) && !d.stopped[i] && !p.Halted() {
			sponsor = i
			break
		}
	}
	if sponsor < 0 {
		return ErrNoLivePeer
	}

	// Reboot: same seed, same rng stream, same enclave identity.
	rng := rand.New(rand.NewSource(d.Opts.Seed ^ int64(id+1)*0x9E3779B9))
	encl, err := enclave.Launch(d.Opts.Program, id, rng, simClock{sim: d.Sim}, d.enclaveOptions()...)
	if err != nil {
		return fmt.Errorf("deploy: restart enclave %d: %w", id, err)
	}
	quote := d.Service.Attest(encl)
	if verr := enclave.VerifyQuote(d.Roster.ServiceKey, d.Roster.Measurement, quote); verr != nil {
		return fmt.Errorf("deploy: restart attestation %d: %w", id, verr)
	}
	d.Roster.Quotes[id] = quote

	tr, err := d.buildTransport(id)
	if err != nil {
		return err
	}
	peer, err := runtime.NewPeer(encl, tr, d.Roster, runtime.Config{
		N:               d.Opts.N,
		T:               d.Opts.T,
		Delta:           d.Opts.Delta,
		Sealer:          d.newSealer(),
		Trace:           d.Opts.Trace,
		Metrics:         d.Opts.Metrics,
		DisableBatching: d.Opts.DisableBatching,
	})
	if err != nil {
		return fmt.Errorf("deploy: restart peer %d: %w", id, err)
	}
	seqs := make([]uint64, d.Opts.N)
	for i := range seqs {
		seqs[i] = d.Peers[sponsor].SeqOf(wire.NodeID(i))
	}
	if err := peer.InstallSeqs(seqs); err != nil {
		return err
	}
	peer.AlignInstance(d.Peers[sponsor].Instance())

	d.Net.Reattach(id)
	d.Encls[id] = encl
	d.Peers[id] = peer
	d.stopped[id] = false
	return nil
}
