// Package deploy assembles complete simulated deployments: a virtual-time
// simulator, a simulated network with the paper's shared-link bandwidth
// model, one enclave plus peer runtime per node, attestation quotes for
// the roster, and the executed setup phase. It is the single entry point
// used by the protocol tests, the experiment harness and the public
// facade, so every consumer runs on an identically constructed testbed.
package deploy

import (
	"fmt"
	"math/rand"
	"time"

	"sgxp2p/internal/enclave"
	"sgxp2p/internal/parallel"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/simnet"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/vclock"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

// DefaultProgram is the canonical protocol program identity measured into
// every enclave. Changing the protocol version changes the measurement and
// therefore isolates incompatible deployments (property P1).
var DefaultProgram = []byte("sgxp2p/erb+erng/v1")

// TransportWrapper intercepts a node's transport, the hook through which
// byzantine OS behaviour (internal/adversary) is injected. It receives the
// node id and the genuine transport and returns the transport the peer
// runtime will actually use.
type TransportWrapper func(id wire.NodeID, tr runtime.Transport) runtime.Transport

// Options configures a deployment.
type Options struct {
	// N is the network size, T the byzantine bound.
	N, T int
	// Delta is the one-way delivery bound; rounds last 2*Delta.
	// Defaults to 1 second, the paper's honest-case scale.
	Delta time.Duration
	// Bandwidth is the shared-link bandwidth in bytes/second.
	// Zero means unlimited; use simnet.DefaultBandwidth (128 MB/s) to
	// match the paper's testbed.
	Bandwidth float64
	// Seed makes the whole deployment deterministic: network jitter and
	// every enclave's randomness derive from it. Seed 0 is valid.
	Seed int64
	// RealCrypto selects the real AES+HMAC sealer instead of the
	// size-identical model sealer. Experiments default to the model
	// sealer; protocol-equivalence is proven in internal/channel tests.
	RealCrypto bool
	// Program overrides the protocol program identity.
	Program []byte
	// Wrap, when non-nil, wraps each node's transport (adversary hook).
	// With Neighbors set, the wrap sits at the physical layer, below the
	// overlay router — a byzantine OS there can also drop frames it was
	// supposed to forward for others.
	Wrap TransportWrapper
	// Neighbors, when non-nil, replaces the full mesh of assumption S5
	// with a sparse overlay (Appendix G): node id may exchange frames
	// only with Neighbors(id, n), and all protocol traffic is flooded
	// through the overlay (internal/overlay).
	Neighbors func(id wire.NodeID, n int) []wire.NodeID
	// LinkDelta is the per-hop delivery bound of the sparse overlay
	// (defaults to Delta). The lockstep round bound Delta must cover the
	// overlay diameter times LinkDelta; see overlay.Diameter.
	LinkDelta time.Duration
	// Workers bounds the goroutines used for the per-node setup work
	// (enclave launch, attestation, quote verification, link key
	// derivation). Zero means GOMAXPROCS; one means strictly serial.
	// The resulting deployment is identical for any worker count: every
	// enclave draws from its own seeded RNG and all results land in
	// index-distinct slots.
	Workers int
	// Trace, when non-nil, receives the round-structured event stream of
	// every peer and the network (churn, round ticks, deliveries). New
	// binds its clock to the simulator, so events carry virtual time.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, is the registry all layers (runtime, channel,
	// transport) register their counters into.
	Metrics *telemetry.Metrics
	// DisableBatching turns off per-round frame coalescing in every
	// peer's runtime (see runtime.Config.DisableBatching): messages are
	// sealed and sent one envelope each, byte-identical to the
	// pre-coalescing wire behaviour.
	DisableBatching bool
}

// Deployment is a fully wired simulated network of peers.
type Deployment struct {
	Sim     *vclock.Sim
	Net     *simnet.Network
	Service *enclave.AttestationService
	Roster  runtime.Roster
	Encls   []*enclave.Enclave
	Peers   []*runtime.Peer
	Opts    Options

	// stopped marks nodes taken down by Stop (crashed machines), as
	// opposed to halted enclaves (P4 churn). See lifecycle.go.
	stopped []bool

	// keyCache memoizes pairwise session keys across all enclaves of the
	// deployment: the (i,j) and (j,i) link derivations are symmetric, so
	// sharing one cache halves the O(N^2) key-agreement work. Joining
	// nodes (join.go) reuse it too.
	keyCache *enclave.KeyCache
}

// simClock adapts the simulator to the enclave Clock interface.
type simClock struct {
	sim *vclock.Sim
}

func (c simClock) Now() time.Duration { return c.sim.Now() }

// New builds a deployment and runs the setup phase (attestation, link
// establishment, sequence-number exchange).
func New(opts Options) (*Deployment, error) {
	if opts.N < 2 {
		return nil, fmt.Errorf("deploy: need at least 2 nodes, got %d", opts.N)
	}
	if opts.T < 0 || 2*opts.T+1 > opts.N {
		return nil, fmt.Errorf("deploy: byzantine bound t=%d violates N >= 2t+1 for N=%d", opts.T, opts.N)
	}
	if opts.Delta <= 0 {
		opts.Delta = time.Second
	}
	if len(opts.Program) == 0 {
		opts.Program = DefaultProgram
	}

	linkDelta := opts.Delta
	if opts.Neighbors != nil && opts.LinkDelta > 0 {
		linkDelta = opts.LinkDelta
	}
	sim := vclock.New()
	net, err := simnet.New(sim, simnet.Config{
		N:         opts.N,
		Delta:     linkDelta,
		Bandwidth: opts.Bandwidth,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: network: %w", err)
	}
	opts.Trace.SetClock(sim.Now)
	net.SetTelemetry(opts.Trace, opts.Metrics)

	masterRNG := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
	service, err := enclave.NewAttestationService(masterRNG)
	if err != nil {
		return nil, fmt.Errorf("deploy: attestation service: %w", err)
	}

	d := &Deployment{
		Sim:     sim,
		Net:     net,
		Service: service,
		Encls:   make([]*enclave.Enclave, opts.N),
		Peers:   make([]*runtime.Peer, opts.N),
		Opts:    opts,
		stopped: make([]bool, opts.N),
	}
	d.Roster = runtime.Roster{
		Quotes:      make([]enclave.Quote, opts.N),
		ServiceKey:  service.VerifyKey(),
		Measurement: xcrypto.Measure(opts.Program),
	}

	clock := simClock{sim: sim}
	d.keyCache = enclave.NewKeyCache()
	enclOpts := []enclave.Option{enclave.WithKeyCache(d.keyCache)}
	if !opts.RealCrypto {
		enclOpts = append(enclOpts, enclave.WithModelKEX())
	}
	// Phase 1 (parallel): launch and attest every enclave. Each enclave
	// draws only from its own seeded RNG and writes index-distinct slots,
	// so the result is independent of the worker count.
	err = parallel.ForEach(opts.N, opts.Workers, func(id int) error {
		rng := rand.New(rand.NewSource(opts.Seed ^ int64(id+1)*0x9E3779B9))
		encl, lerr := enclave.Launch(opts.Program, wire.NodeID(id), rng, clock, enclOpts...)
		if lerr != nil {
			return fmt.Errorf("deploy: enclave %d: %w", id, lerr)
		}
		d.Encls[id] = encl
		d.Roster.Quotes[id] = service.Attest(encl)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Phase 2 (parallel): verify the whole roster once here instead of
	// once per peer — the simulated deployment shares one process, so N^2
	// re-verifications of identical quotes would only burn CPU.
	err = parallel.ForEach(opts.N, opts.Workers, func(id int) error {
		if verr := enclave.VerifyQuote(d.Roster.ServiceKey, d.Roster.Measurement, d.Roster.Quotes[id]); verr != nil {
			return fmt.Errorf("deploy: attestation of node %d: %w", id, verr)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.Roster.PreVerified = true

	// Phase 3 (serial): build the transports. Caller-supplied Wrap and
	// Neighbors closures are not required to be goroutine-safe (adversary
	// wrappers routinely capture shared mutable state), so this phase
	// stays on one goroutine.
	transports := make([]runtime.Transport, opts.N)
	for id := 0; id < opts.N; id++ {
		tr, terr := d.buildTransport(wire.NodeID(id))
		if terr != nil {
			return nil, terr
		}
		transports[id] = tr
	}

	// Phase 4 (parallel): establish every peer's N-1 blinded channels.
	// This is the O(N^2) Diffie-Hellman work; the shared key cache means
	// each unordered pair is derived once and the parallel pool spreads
	// the rest across cores.
	err = parallel.ForEach(opts.N, opts.Workers, func(id int) error {
		peer, perr := runtime.NewPeer(d.Encls[id], transports[id], d.Roster, runtime.Config{
			N:               opts.N,
			T:               opts.T,
			Delta:           opts.Delta,
			Sealer:          d.newSealer(),
			Trace:           opts.Trace,
			Metrics:         opts.Metrics,
			DisableBatching: opts.DisableBatching,
		})
		if perr != nil {
			return fmt.Errorf("deploy: peer %d: %w", id, perr)
		}
		d.Peers[id] = peer
		return nil
	})
	if err != nil {
		return nil, err
	}

	if err := runtime.Setup(d.Peers); err != nil {
		return nil, fmt.Errorf("deploy: setup: %w", err)
	}
	return d, nil
}

// Run drains the simulation.
func (d *Deployment) Run() error {
	return d.Sim.Run()
}

// RunFor advances the simulation by the given virtual duration.
func (d *Deployment) RunFor(dur time.Duration) {
	d.Sim.RunUntil(d.Sim.Now() + dur)
}

// RoundDuration returns the lockstep round length, 2*Delta.
func (d *Deployment) RoundDuration() time.Duration {
	return 2 * d.Opts.Delta
}
