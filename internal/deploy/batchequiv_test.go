package deploy_test

import (
	"slices"
	"testing"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// These tests pin the coalescing equivalence contract: batching changes
// how messages are framed on the wire (one sealed batch per link per
// flush instead of one envelope per message), and nothing else. Every
// protocol outcome and every per-message runtime statistic must be
// identical with the knob on and off, for the same seed.
//
// The wire streams themselves are intentionally NOT compared — they
// differ by construction (that is the point of batching); the unbatched
// stream is separately pinned byte-for-byte by
// TestUnbatchedWireStreamGolden.

// erbEquivRun holds everything the ERB scenario must reproduce across
// batching modes.
type erbEquivRun struct {
	stats   []runtime.Stats
	results []erb.Result
}

// runEquivERB runs one seeded ERB broadcast (initiator 0) and returns
// the per-peer stats and results.
func runEquivERB(t *testing.T, n, tb int, seed int64, disableBatching bool) erbEquivRun {
	t.Helper()
	d, err := deploy.New(deploy.Options{N: n, T: tb, Seed: seed, DisableBatching: disableBatching})
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*erb.Engine, len(d.Peers))
	for i, p := range d.Peers {
		eng, eerr := erb.NewEngine(p, erb.Config{T: tb, ExpectedInitiators: []wire.NodeID{0}})
		if eerr != nil {
			t.Fatal(eerr)
		}
		engines[i] = eng
	}
	engines[0].SetInput(wire.Value{0xAB, 0xCD, 0xEF})
	for i, p := range d.Peers {
		p.Start(engines[i], engines[i].Rounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	run := erbEquivRun{}
	for i, eng := range engines {
		res, ok := eng.Result(0)
		if !ok {
			t.Fatalf("node %d has no ERB result", i)
		}
		run.results = append(run.results, res)
		run.stats = append(run.stats, d.Peers[i].Stats())
	}
	return run
}

// runEquivERNG runs one seeded basic-ERNG epoch (all nodes initiate —
// the traffic shape that actually produces multi-message batches) and
// returns the per-peer stats and outputs.
func runEquivERNG(t *testing.T, n, tb int, seed int64, disableBatching bool) ([]runtime.Stats, []erng.Result) {
	t.Helper()
	d, err := deploy.New(deploy.Options{N: n, T: tb, Seed: seed, DisableBatching: disableBatching})
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*erng.Basic, len(d.Peers))
	rounds := 0
	for i, p := range d.Peers {
		proto, perr := erng.NewBasic(p, tb)
		if perr != nil {
			t.Fatal(perr)
		}
		protos[i] = proto
		rounds = proto.Rounds()
	}
	for i, p := range d.Peers {
		p.Start(protos[i], rounds)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	var stats []runtime.Stats
	var outs []erng.Result
	for i, proto := range protos {
		res, ok := proto.Result()
		if !ok {
			t.Fatalf("node %d produced no ERNG output", i)
		}
		outs = append(outs, res)
		stats = append(stats, d.Peers[i].Stats())
	}
	return stats, outs
}

// TestBatchingEquivalenceERB checks that a batched and an unbatched ERB
// run from the same seed accept the same values with identical
// per-message statistics, across several topology sizes.
func TestBatchingEquivalenceERB(t *testing.T) {
	for _, tc := range []struct {
		n, t int
		seed int64
	}{
		{5, 2, 1},
		{9, 4, 2},
		{17, 8, 3},
	} {
		batched := runEquivERB(t, tc.n, tc.t, tc.seed, false)
		plain := runEquivERB(t, tc.n, tc.t, tc.seed, true)
		for i := range batched.results {
			// At (the virtual decision instant) is excluded on purpose:
			// batching changes how many frames the network carries, so
			// the simulated latency draws — and with them sub-round
			// timing — legitimately differ. The protocol-visible outcome
			// (acceptance, value, lockstep round) must not.
			b, u := batched.results[i], plain.results[i]
			if b.Accepted != u.Accepted || b.Value != u.Value || b.Round != u.Round {
				t.Errorf("n=%d seed=%d node %d: ERB result diverged across batching modes: batched %+v, unbatched %+v",
					tc.n, tc.seed, i, b, u)
			}
			if batched.stats[i] != plain.stats[i] {
				t.Errorf("n=%d seed=%d node %d: runtime stats diverged across batching modes:\n  batched   %+v\n  unbatched %+v",
					tc.n, tc.seed, i, batched.stats[i], plain.stats[i])
			}
		}
	}
}

// TestBatchingEquivalenceERNG does the same for the basic ERNG, whose
// concurrent initiators are the workload where flushes actually carry
// more than one message per frame.
func TestBatchingEquivalenceERNG(t *testing.T) {
	batchedStats, batchedOut := runEquivERNG(t, 5, 2, 3, false)
	plainStats, plainOut := runEquivERNG(t, 5, 2, 3, true)
	for i := range batchedOut {
		b, u := batchedOut[i], plainOut[i]
		if b.OK != u.OK || b.Value != u.Value || !slices.Equal(b.Contributors, u.Contributors) {
			t.Errorf("node %d: ERNG output diverged across batching modes: batched %+v, unbatched %+v",
				i, b, u)
		}
		if batchedStats[i] != plainStats[i] {
			t.Errorf("node %d: runtime stats diverged across batching modes:\n  batched   %+v\n  unbatched %+v",
				i, batchedStats[i], plainStats[i])
		}
	}
}
