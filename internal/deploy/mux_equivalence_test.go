package deploy_test

import (
	"bytes"
	"slices"
	"testing"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// These tests pin the multiplexing equivalence contract: hosting k
// protocol instances behind one runtime.Mux changes how many epochs the
// lockstep schedule spans and how frames coalesce on the wire — and
// nothing a protocol can observe. Every instance must decide exactly what
// the k-epoch serial run of the same seed decides, with rounds normalized
// to each instance's own start round (absolute rounds differ by
// construction: that is the point of packing instances into one run).

// muxValue derives the deterministic payload of request j.
func muxValue(j int) wire.Value {
	var v wire.Value
	v[0] = byte(j + 1)
	v[1] = byte(j >> 8)
	v[31] = 0x5A
	return v
}

// normRound maps an absolute decision round to the instance-relative
// round a serial epoch (start round 1) would report.
func normRound(round, startRound uint32) uint32 {
	return round - (startRound - 1)
}

// runSerialERBMany runs k sequential ERB epochs (initiators round-robin)
// on one deployment and returns results[j][node] for request j.
func runSerialERBMany(t *testing.T, n, tb, k int, seed int64, disableBatching bool) [][]erb.Result {
	t.Helper()
	d, err := deploy.New(deploy.Options{N: n, T: tb, Seed: seed, DisableBatching: disableBatching})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]erb.Result, k)
	for j := 0; j < k; j++ {
		initiator := wire.NodeID(j % n)
		engines := make([]*erb.Engine, n)
		for i, p := range d.Peers {
			eng, eerr := erb.NewEngine(p, erb.Config{T: tb, ExpectedInitiators: []wire.NodeID{initiator}})
			if eerr != nil {
				t.Fatal(eerr)
			}
			engines[i] = eng
		}
		engines[initiator].SetInput(muxValue(j))
		for i, p := range d.Peers {
			p.Start(engines[i], engines[i].Rounds())
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		out[j] = make([]erb.Result, n)
		for i, eng := range engines {
			res, ok := eng.Result(initiator)
			if !ok {
				t.Fatalf("epoch %d node %d has no ERB result", j, i)
			}
			out[j][i] = res
		}
		for _, p := range d.Peers {
			p.BumpSeqs()
		}
	}
	return out
}

// runMuxERBMany runs the same k broadcasts concurrently behind one mux
// per node and returns results[j][node] with rounds normalized to each
// instance's start round.
func runMuxERBMany(t *testing.T, n, tb, k, maxInFlight int, seed int64, disableBatching bool) [][]erb.Result {
	t.Helper()
	d, err := deploy.New(deploy.Options{N: n, T: tb, Seed: seed, DisableBatching: disableBatching})
	if err != nil {
		t.Fatal(err)
	}
	engines := make([][]*erb.Engine, n)
	handles := make([][]*runtime.Instance, n)
	muxes := make([]*runtime.Mux, n)
	for i, p := range d.Peers {
		m := runtime.NewMux(p, runtime.MuxConfig{MaxInFlight: maxInFlight})
		muxes[i] = m
		engines[i] = make([]*erb.Engine, k)
		handles[i] = make([]*runtime.Instance, k)
		self := p.ID()
		engs := engines[i]
		for j := 0; j < k; j++ {
			initiator := wire.NodeID(j % n)
			value := muxValue(j)
			slot := j
			it, serr := m.Spawn(tb+2, func(inst *runtime.Instance) (runtime.Protocol, error) {
				eng, eerr := erb.NewEngine(inst, erb.Config{
					T:                  tb,
					StartRound:         inst.StartRound(),
					ExpectedInitiators: []wire.NodeID{initiator},
				})
				if eerr != nil {
					return nil, eerr
				}
				if self == initiator {
					eng.SetInput(value)
				}
				engs[slot] = eng
				return eng, nil
			})
			if serr != nil {
				t.Fatal(serr)
			}
			handles[i][j] = it
		}
		p.Start(m, m.PlannedRounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	out := make([][]erb.Result, k)
	for j := 0; j < k; j++ {
		initiator := wire.NodeID(j % n)
		out[j] = make([]erb.Result, n)
		for i := 0; i < n; i++ {
			if engines[i][j] == nil {
				t.Fatalf("node %d request %d never built (err=%v)", i, j, handles[i][j].Err())
			}
			res, ok := engines[i][j].Result(initiator)
			if !ok {
				t.Fatalf("node %d request %d has no ERB result", i, j)
			}
			res.Round = normRound(res.Round, handles[i][j].StartRound())
			out[j][i] = res
		}
	}
	return out
}

// TestMuxSerialEquivalenceERB checks that multiplexed broadcasts decide
// exactly what the serial epochs decide — with admission both unbounded
// (all windows overlap) and bounded (staggered admission), and with
// batching both on and off.
func TestMuxSerialEquivalenceERB(t *testing.T) {
	const n, tb, k = 5, 2, 6
	for _, disableBatching := range []bool{false, true} {
		serial := runSerialERBMany(t, n, tb, k, 7, disableBatching)
		for _, maxInFlight := range []int{0, 2} {
			mux := runMuxERBMany(t, n, tb, k, maxInFlight, 7, disableBatching)
			for j := 0; j < k; j++ {
				for i := 0; i < n; i++ {
					s, m := serial[j][i], mux[j][i]
					// At is excluded: virtual time depends on how many
					// epochs preceded the decision. Acceptance, value and
					// the instance-relative decision round must match.
					if s.Accepted != m.Accepted || s.Value != m.Value || s.Round != m.Round {
						t.Errorf("batchingOff=%v inflight=%d request %d node %d: serial %+v, mux %+v",
							disableBatching, maxInFlight, j, i, s, m)
					}
				}
			}
		}
	}
}

// runSerialERNGMany runs k sequential basic-ERNG epochs on one deployment.
func runSerialERNGMany(t *testing.T, n, tb, k int, seed int64, disableBatching bool) [][]erng.Result {
	t.Helper()
	d, err := deploy.New(deploy.Options{N: n, T: tb, Seed: seed, DisableBatching: disableBatching})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]erng.Result, k)
	for j := 0; j < k; j++ {
		protos := make([]*erng.Basic, n)
		rounds := 0
		for i, p := range d.Peers {
			proto, perr := erng.NewBasic(p, tb)
			if perr != nil {
				t.Fatal(perr)
			}
			protos[i] = proto
			rounds = proto.Rounds()
		}
		for i, p := range d.Peers {
			p.Start(protos[i], rounds)
		}
		if err := d.Run(); err != nil {
			t.Fatal(err)
		}
		out[j] = make([]erng.Result, n)
		for i, proto := range protos {
			res, ok := proto.Result()
			if !ok {
				t.Fatalf("epoch %d node %d produced no ERNG output", j, i)
			}
			out[j][i] = res
		}
		for _, p := range d.Peers {
			p.BumpSeqs()
		}
	}
	return out
}

// runMuxERNGMany runs k basic-ERNG instances behind one mux per node.
func runMuxERNGMany(t *testing.T, n, tb, k, maxInFlight int, seed int64, disableBatching bool) [][]erng.Result {
	t.Helper()
	d, err := deploy.New(deploy.Options{N: n, T: tb, Seed: seed, DisableBatching: disableBatching})
	if err != nil {
		t.Fatal(err)
	}
	protos := make([][]*erng.Basic, n)
	handles := make([][]*runtime.Instance, n)
	for i, p := range d.Peers {
		m := runtime.NewMux(p, runtime.MuxConfig{MaxInFlight: maxInFlight})
		protos[i] = make([]*erng.Basic, k)
		handles[i] = make([]*runtime.Instance, k)
		ps := protos[i]
		for j := 0; j < k; j++ {
			slot := j
			it, serr := m.Spawn(tb+2, func(inst *runtime.Instance) (runtime.Protocol, error) {
				proto, perr := erng.NewBasicAt(inst, tb, inst.StartRound())
				if perr != nil {
					return nil, perr
				}
				ps[slot] = proto
				return proto, nil
			})
			if serr != nil {
				t.Fatal(serr)
			}
			handles[i][j] = it
		}
		p.Start(m, m.PlannedRounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	out := make([][]erng.Result, k)
	for j := 0; j < k; j++ {
		out[j] = make([]erng.Result, n)
		for i := 0; i < n; i++ {
			res, ok := protos[i][j].Result()
			if !ok {
				t.Fatalf("node %d instance %d produced no ERNG output", i, j)
			}
			res.Round = normRound(res.Round, handles[i][j].StartRound())
			out[j][i] = res
		}
	}
	return out
}

// TestMuxSerialEquivalenceERNG checks that multiplexed ERNG epochs emit
// the same random values as the serial epochs: the per-node enclave draw
// order is spawn order, which is epoch order, so the outputs — not just
// their distribution — coincide per seed.
func TestMuxSerialEquivalenceERNG(t *testing.T) {
	const n, tb, k = 5, 2, 4
	for _, disableBatching := range []bool{false, true} {
		serial := runSerialERNGMany(t, n, tb, k, 11, disableBatching)
		for _, maxInFlight := range []int{0, 2} {
			mux := runMuxERNGMany(t, n, tb, k, maxInFlight, 11, disableBatching)
			for j := 0; j < k; j++ {
				for i := 0; i < n; i++ {
					s, m := serial[j][i], mux[j][i]
					if s.OK != m.OK || s.Value != m.Value || !slices.Equal(s.Contributors, m.Contributors) {
						t.Errorf("batchingOff=%v inflight=%d epoch %d node %d: serial %+v, mux %+v",
							disableBatching, maxInFlight, j, i, s, m)
					}
				}
			}
		}
	}
}

// muxTraceRun runs a k-instance multiplexed ERB workload under a tracer
// and returns the exported JSONL stream.
func muxTraceRun(t *testing.T, seed int64) []byte {
	t.Helper()
	tracer := telemetry.New(telemetry.Options{Ring: 256})
	d, err := deploy.New(deploy.Options{N: 4, T: 1, Seed: seed, Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	for _, p := range d.Peers {
		m := runtime.NewMux(p, runtime.MuxConfig{MaxInFlight: 2})
		self := p.ID()
		for j := 0; j < k; j++ {
			initiator := wire.NodeID(j % 4)
			value := muxValue(j)
			if _, serr := m.Spawn(3, func(inst *runtime.Instance) (runtime.Protocol, error) {
				eng, eerr := erb.NewEngine(inst, erb.Config{
					T:                  1,
					StartRound:         inst.StartRound(),
					ExpectedInitiators: []wire.NodeID{initiator},
				})
				if eerr != nil {
					return nil, eerr
				}
				if self == initiator {
					eng.SetInput(value)
				}
				return eng, nil
			}); serr != nil {
				t.Fatal(serr)
			}
		}
		p.Start(m, m.PlannedRounds())
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMuxTraceDeterminismWithInstances checks that two multiplexed runs
// of the same seed export byte-identical traces, and that the stream
// actually attributes events to more than one instance id — the
// observability contract of the multiplexed runtime.
func TestMuxTraceDeterminismWithInstances(t *testing.T) {
	a := muxTraceRun(t, 21)
	b := muxTraceRun(t, 21)
	if !bytes.Equal(a, b) {
		t.Fatal("multiplexed trace streams differ across runs of the same seed")
	}
	events, err := telemetry.ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, ev := range events {
		if ev.Instance != 0 {
			seen[ev.Instance] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("trace attributes events to %d instances, want >= 2", len(seen))
	}
}
