module sgxp2p

go 1.22
