package sgxp2p

import (
	"sgxp2p/internal/adversary"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/wire"
)

// Adversary types, re-exported so experiments against byzantine nodes can
// be built through the public API. A Behavior is the byzantine operating
// system's per-envelope policy; it observes only destinations and sizes
// (the blind-box property P3) and can only omit, hold, duplicate or
// corrupt sealed envelopes — the paper's Theorem A.2 reduction, enforced
// structurally.
type (
	// Behavior is the byzantine OS policy.
	Behavior = adversary.Behavior
	// AdversaryOS is the wrapped byzantine OS of one node.
	AdversaryOS = adversary.OS
	// AdversaryStats counts what a byzantine OS did.
	AdversaryStats = adversary.Stats
)

// OmitAll drops every outbound envelope (attack A3).
func OmitAll() Behavior { return adversary.OmitAll() }

// OmitTo drops envelopes to matching destinations (identity-selective
// omission, attack A3).
func OmitTo(pred func(dst NodeID) bool) Behavior { return adversary.OmitTo(pred) }

// OmitProbabilistic drops each envelope independently with probability p.
func OmitProbabilistic(p float64, seed int64) Behavior {
	return adversary.OmitProbabilistic(p, seed)
}

// DelayAll holds every envelope for a later release (attack A4); the
// lockstep round check turns released envelopes into omissions.
func DelayAll() Behavior { return adversary.DelayAll() }

// CorruptEverything flips one bit of every envelope (attack A2); the
// channel MAC turns corruption into omission.
func CorruptEverything() Behavior { return adversary.CorruptEverything() }

// Chain is the worst-case strategy of the paper's Section 6.3: each chain
// member forwards only to the next, delaying honest acceptance to ~f+2
// rounds while every member churns itself out.
func Chain(chain []NodeID, self int, release NodeID) Behavior {
	return adversary.Chain(chain, self, release)
}

// MisbehaveWithProbability omits everything with probability p per epoch
// (the Appendix D sanitization model).
func MisbehaveWithProbability(p float64, seed int64) Behavior {
	return adversary.MisbehaveWithProbability(p, seed)
}

// wrapper builds the deploy transport hook installing adversary OSes.
func (c *Cluster) wrapper(opts Options) deploy.TransportWrapper {
	if len(opts.Adversary) == 0 {
		return nil
	}
	return func(id wire.NodeID, tr runtime.Transport) runtime.Transport {
		b, ok := opts.Adversary[id]
		if !ok || b == nil {
			return tr
		}
		os := adversary.Wrap(id, tr, b, opts.Seed+int64(id))
		c.ads[id] = os
		return os
	}
}
