package sgxp2p_test

import (
	"testing"

	"sgxp2p"
)

func TestClusterBroadcast(t *testing.T) {
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 7, T: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 7 || c.T() != 3 {
		t.Fatalf("N=%d T=%d", c.N(), c.T())
	}
	payload := sgxp2p.ValueFromString("block #42")
	results, err := c.Broadcast(2, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d results, want 7", len(results))
	}
	for id, res := range results {
		if !res.Accepted || res.Value != payload {
			t.Fatalf("node %d: %+v", id, res)
		}
	}
	if tr := c.Traffic(); tr.Messages == 0 || tr.Bytes == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestClusterSequentialBroadcasts(t *testing.T) {
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		payload := sgxp2p.ValueFromString("msg")
		results, err := c.Broadcast(sgxp2p.NodeID(round), payload)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for id, res := range results {
			if !res.Accepted {
				t.Fatalf("round %d node %d rejected", round, id)
			}
		}
	}
}

func TestClusterGenerateRandom(t *testing.T) {
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c.GenerateRandom()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.GenerateRandom()
	if err != nil {
		t.Fatal(err)
	}
	if !e1.OK || !e2.OK {
		t.Fatalf("emissions not OK: %+v %+v", e1, e2)
	}
	if e1.Value == e2.Value {
		t.Fatal("two epochs emitted the same value")
	}
}

func TestClusterWithAdversary(t *testing.T) {
	c, err := sgxp2p.NewCluster(sgxp2p.Options{
		N: 7, T: 3, Seed: 4,
		Adversary: map[sgxp2p.NodeID]sgxp2p.Behavior{
			0: sgxp2p.OmitAll(),
			1: sgxp2p.CorruptEverything(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := sgxp2p.ValueFromString("despite attackers")
	results, err := c.Broadcast(3, payload)
	if err != nil {
		t.Fatal(err)
	}
	for id := sgxp2p.NodeID(2); id < 7; id++ {
		res, ok := results[id]
		if !ok || !res.Accepted || res.Value != payload {
			t.Fatalf("honest node %d: %+v ok=%v", id, res, ok)
		}
	}
	if !c.Halted(0) {
		t.Fatal("omit-all node not churned out")
	}
	if os := c.AdversaryState(1); os == nil || os.Stats().Corrupted == 0 {
		t.Fatal("adversary state not exposed")
	}
	if c.AdversaryState(5) != nil {
		t.Fatal("honest node has adversary state")
	}
}

func TestClusterBeaconAndApps(t *testing.T) {
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewBeacon(sgxp2p.BeaconBasic)
	if err != nil {
		t.Fatal(err)
	}

	sched, err := sgxp2p.NewKeySchedule(b, "transport")
	if err != nil {
		t.Fatal(err)
	}
	k1, err := sched.NextKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := sched.NextKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("key schedule repeated a key")
	}

	bal, err := sgxp2p.NewBalancer(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := bal.AssignBatch([]string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"})
	if err != nil {
		t.Fatal(err)
	}
	spread := sgxp2p.AssignmentSpread(assign, 4)
	total := 0
	for _, n := range spread {
		total += n
	}
	if total != 8 {
		t.Fatalf("spread %v does not cover all tasks", spread)
	}

	walker, err := sgxp2p.NewWalker(b, sgxp2p.NewRing(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	path, err := walker.Walk(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 11 {
		t.Fatalf("walk length %d", len(path))
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := sgxp2p.NewCluster(sgxp2p.Options{N: 1, T: 0}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 3}); err == nil {
		t.Error("T beyond bound accepted")
	}
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 3, T: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Broadcast(9, sgxp2p.Value{}); err == nil {
		t.Error("out-of-range initiator accepted")
	}
}

func TestClusterRealCrypto(t *testing.T) {
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 3, T: 1, Seed: 7, RealCrypto: true})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Broadcast(0, sgxp2p.ValueFromString("aes for real"))
	if err != nil {
		t.Fatal(err)
	}
	for id, res := range results {
		if !res.Accepted {
			t.Fatalf("node %d rejected under real crypto", id)
		}
	}
}

func TestClusterJoin(t *testing.T) {
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	newID, err := c.Join(sgxp2p.JoinOptions{Sponsor: 1, PuzzleDifficulty: 6})
	if err != nil {
		t.Fatal(err)
	}
	if newID != 5 || c.N() != 6 {
		t.Fatalf("newID=%d N=%d", newID, c.N())
	}
	// The newcomer can broadcast to everyone.
	payload := sgxp2p.ValueFromString("fresh node")
	results, err := c.Broadcast(newID, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d, want 6", len(results))
	}
	for id, res := range results {
		if !res.Accepted || res.Value != payload {
			t.Fatalf("node %d: %+v", id, res)
		}
	}
}

func TestClusterBroadcastMany(t *testing.T) {
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 7, T: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]sgxp2p.BroadcastRequest, 20)
	for j := range reqs {
		reqs[j] = sgxp2p.BroadcastRequest{
			Initiator: sgxp2p.NodeID(j % 7),
			Value:     sgxp2p.ValueFromString("mux payload"),
		}
	}
	results, err := c.BroadcastMany(reqs, sgxp2p.MuxOptions{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d result sets, want %d", len(results), len(reqs))
	}
	for j, res := range results {
		if len(res) != 7 {
			t.Fatalf("request %d decided at %d nodes, want 7", j, len(res))
		}
		for id, r := range res {
			if !r.Accepted || r.Value != reqs[j].Value {
				t.Fatalf("request %d node %d: %+v", j, id, r)
			}
		}
	}
	// The cluster stays usable for ordinary epochs afterwards.
	after, err := c.Broadcast(0, sgxp2p.ValueFromString("after"))
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range after {
		if !r.Accepted {
			t.Fatalf("post-mux broadcast rejected at node %d", id)
		}
	}
}

// TestClusterGenerateRandomMany drives concurrent basic-ERNG epochs
// through the multiplexed runtime end-to-end via the public API: every
// epoch must reach an identical, OK decision with all N contributors at
// every node, distinct epochs must emit distinct values (each instance
// draws its contributions at its own admission round), and the cluster
// must stay usable for ordinary single-epoch runs afterwards.
func TestClusterGenerateRandomMany(t *testing.T) {
	const n, epochs = 5, 12
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: n, T: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.GenerateRandomMany(epochs, sgxp2p.MuxOptions{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != epochs {
		t.Fatalf("got %d epochs, want %d", len(results), epochs)
	}
	seen := make(map[sgxp2p.Value]int, epochs)
	for j, res := range results {
		if len(res) != n {
			t.Fatalf("epoch %d decided at %d nodes, want %d", j, len(res), n)
		}
		first := res[0]
		if !first.OK || len(first.Contributors) != n {
			t.Fatalf("epoch %d node 0: %+v", j, first)
		}
		for id, r := range res {
			if !r.OK || r.Value != first.Value || len(r.Contributors) != n {
				t.Fatalf("epoch %d node %d diverged: %+v vs %+v", j, id, r, first)
			}
		}
		if prev, dup := seen[first.Value]; dup {
			t.Fatalf("epochs %d and %d emitted the same value", prev, j)
		}
		seen[first.Value] = j
	}
	// The cluster stays usable for ordinary epochs afterwards.
	after, err := c.GenerateRandom()
	if err != nil {
		t.Fatal(err)
	}
	if !after.OK {
		t.Fatalf("post-mux epoch not OK: %+v", after)
	}
	if _, dup := seen[after.Value]; dup {
		t.Fatal("post-mux epoch repeated a multiplexed value")
	}
}

func TestClusterBroadcastManyValidation(t *testing.T) {
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := c.BroadcastMany(nil, sgxp2p.MuxOptions{}); err != nil || out != nil {
		t.Fatalf("empty request list: out=%v err=%v", out, err)
	}
	if _, err := c.BroadcastMany([]sgxp2p.BroadcastRequest{{Initiator: 9}}, sgxp2p.MuxOptions{}); err == nil {
		t.Fatal("out-of-range initiator accepted")
	}
	reqs := []sgxp2p.BroadcastRequest{{Initiator: 0}, {Initiator: 1}}
	if _, err := c.BroadcastMany(reqs, sgxp2p.MuxOptions{MaxBacklog: 1}); err == nil {
		t.Fatal("backlog overflow accepted")
	}
}
