package sgxp2p_test

import (
	"fmt"

	"sgxp2p"
)

// ExampleCluster_Broadcast reliably broadcasts a value across a simulated
// enclaved network and shows every node's decision.
func ExampleCluster_Broadcast() {
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 2, Seed: 42})
	if err != nil {
		fmt.Println(err)
		return
	}
	payload := sgxp2p.ValueFromString("commit 7f3a")
	results, err := cluster.Broadcast(0, payload)
	if err != nil {
		fmt.Println(err)
		return
	}
	accepted := 0
	for _, res := range results {
		if res.Accepted && res.Value == payload {
			accepted++
		}
	}
	fmt.Printf("%d/5 nodes accepted in round %d\n", accepted, results[4].Round)
	// Output: 5/5 nodes accepted in round 2
}

// ExampleCluster_GenerateRandom produces a common unbiased random number.
func ExampleCluster_GenerateRandom() {
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 5, T: 2, Seed: 42})
	if err != nil {
		fmt.Println(err)
		return
	}
	emission, err := cluster.GenerateRandom()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("ok=%v contributors=%d\n", emission.OK, len(emission.Contributors))
	// Output: ok=true contributors=5
}

// ExampleCluster_Join grows the network at runtime: a sponsor announces
// the newcomer through reliable broadcast and everyone admits it.
func ExampleCluster_Join() {
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 4, T: 1, Seed: 42})
	if err != nil {
		fmt.Println(err)
		return
	}
	newID, err := cluster.Join(sgxp2p.JoinOptions{Sponsor: 0})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("node %d joined, N=%d\n", newID, cluster.N())
	// Output: node 4 joined, N=5
}

// ExampleMinCommitteeSize sizes shards so each keeps an honest majority.
func ExampleMinCommitteeSize() {
	m, err := sgxp2p.MinCommitteeSize(0.25, 0.001)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("beta=0.25 eps=0.1%%: %d nodes per shard\n", m)
	// Output: beta=0.25 eps=0.1%: 56 nodes per shard
}
