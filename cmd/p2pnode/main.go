// Command p2pnode runs one enclaved peer over real TCP — the live-network
// counterpart of the simulated experiments, demonstrating that the same
// protocol code (ERB, basic ERNG) runs over an actual network stack.
//
// A demo on one machine, 4 peers tolerating 1 byzantine node:
//
//	START=$(( $(date +%s%3N) + 3000 ))
//	for i in 0 1 2 3; do
//	  p2pnode -id $i -n 4 -t 1 \
//	    -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103 \
//	    -start-at-ms $START -mode erng &
//	done; wait
//
// All processes must share the -peers table and the -start-at-ms instant
// (the synchronized start, assumption S2). The peer with -id equal to
// -initiator broadcasts -message in erb mode; in erng mode every peer
// contributes enclave randomness and they agree on a common number.
//
// The demo shares one attestation-service key derived from -demo-secret:
// in a production deployment each enclave would be attested by the real
// IAS instead. Everything else — measurement-bound channels, AES+HMAC
// sealing, lockstep rounds, halt-on-divergence — is the real protocol.
package main

import (
	"flag"
	"fmt"
	"io"
	mrand "math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/tcpnet"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "p2pnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("p2pnode", flag.ContinueOnError)
	var (
		id         = fs.Int("id", 0, "this node's id in [0, n)")
		n          = fs.Int("n", 4, "network size")
		t          = fs.Int("t", 1, "byzantine bound (n >= 2t+1)")
		delta      = fs.Duration("delta", 250*time.Millisecond, "one-way delivery bound")
		peers      = fs.String("peers", "", "comma-separated id=host:port table for ALL nodes")
		startAtMS  = fs.Int64("start-at-ms", 0, "synchronized start (unix ms); 0 = now + 3s, printed for reuse")
		mode       = fs.String("mode", "erb", "protocol: erb or erng")
		initiator  = fs.Int("initiator", 0, "erb mode: broadcasting node")
		message    = fs.String("message", "hello from the enclave", "erb mode: payload")
		demoSecret = fs.Int64("demo-secret", 42, "shared demo attestation seed (all nodes must agree)")
		tracePath  = fs.String("trace", "", "write this node's telemetry event stream (JSONL) to a file on exit")
		metricsOut = fs.String("metrics-out", "", "write this node's metrics in Prometheus text format to a file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 || *t < 0 || 2**t+1 > *n {
		return fmt.Errorf("invalid sizes n=%d t=%d", *n, *t)
	}
	addrs, err := parsePeers(*peers, *n)
	if err != nil {
		return err
	}
	self := wire.NodeID(*id)

	port, err := tcpnet.Listen(self, addrs[self])
	if err != nil {
		return err
	}
	defer port.Close()
	port.Connect(addrs)

	start := time.UnixMilli(*startAtMS)
	if *startAtMS == 0 {
		start = time.Now().Add(3 * time.Second)
		fmt.Printf("node %d: starting at %d (pass -start-at-ms %d to the other nodes)\n",
			self, start.UnixMilli(), start.UnixMilli())
	}
	port.SetOrigin(start)

	// Telemetry rides on the port's logical clock (time since the shared
	// start instant), so traces from different nodes of one run line up.
	var trace *telemetry.Tracer
	var metrics *telemetry.Metrics
	if *tracePath != "" {
		trace = telemetry.New(telemetry.Options{Clock: port.Now})
	}
	if *metricsOut != "" {
		metrics = telemetry.NewMetrics()
		port.SetMetrics(metrics)
	}
	dump := func() error {
		if trace != nil {
			if werr := writeExport(*tracePath, trace.ExportJSONL); werr != nil {
				return werr
			}
		}
		if metrics != nil {
			if werr := writeExport(*metricsOut, metrics.ExportPrometheus); werr != nil {
				return werr
			}
		}
		return nil
	}

	// Demo attestation: every node derives the same service key from the
	// shared demo secret, so quotes verify across processes without an
	// online attestation service.
	service, err := enclave.NewAttestationService(mrand.New(mrand.NewSource(*demoSecret)))
	if err != nil {
		return err
	}
	program := []byte("sgxp2p/p2pnode/v1")
	clock := enclave.NewWallClock()

	// Demo key exchange: with no out-of-band channel in the demo, each
	// node derives every peer's enclave deterministically from the shared
	// secret, standing in for the quote exchange of the setup phase.
	roster := runtime.Roster{
		Quotes:      make([]enclave.Quote, *n),
		ServiceKey:  service.VerifyKey(),
		Measurement: enclaveMeasurement(program),
	}
	var encl *enclave.Enclave
	seqs := make([]uint64, *n)
	for i := 0; i < *n; i++ {
		peerRng := mrand.New(mrand.NewSource(*demoSecret ^ int64(i+1)*0x9E3779B9))
		e, lerr := enclave.Launch(program, wire.NodeID(i), peerRng, clock)
		if lerr != nil {
			return lerr
		}
		if wire.NodeID(i) == self {
			encl = e
		}
		roster.Quotes[i] = service.Attest(e)
		s, serr := e.RandomSeq()
		if serr != nil {
			return serr
		}
		seqs[i] = s
	}

	peer, err := runtime.NewPeer(encl, port, roster, runtime.Config{
		N: *n, T: *t, Delta: *delta, Trace: trace, Metrics: metrics,
	})
	if err != nil {
		return err
	}
	if err := peer.InstallSeqs(seqs); err != nil {
		return err
	}

	done := make(chan string, 1)
	var proto runtime.Protocol
	var rounds int
	switch *mode {
	case "erb":
		eng, err := erb.NewEngine(peer, erb.Config{
			T:                  *t,
			ExpectedInitiators: []wire.NodeID{wire.NodeID(*initiator)},
		})
		if err != nil {
			return err
		}
		if int(self) == *initiator {
			var v wire.Value
			copy(v[:], *message)
			eng.SetInput(v)
		}
		rounds = eng.Rounds()
		proto = &finishHook{Protocol: eng, onFinish: func() {
			res, ok := eng.Result(wire.NodeID(*initiator))
			if !ok {
				done <- "no decision"
				return
			}
			if !res.Accepted {
				done <- "accepted bottom"
				return
			}
			done <- fmt.Sprintf("accepted %q in round %d", strings.TrimRight(string(res.Value[:]), "\x00"), res.Round)
		}}
	case "erng":
		b, err := erng.NewBasic(peer, *t)
		if err != nil {
			return err
		}
		rounds = b.Rounds()
		proto = &finishHook{Protocol: b, onFinish: func() {
			res, ok := b.Result()
			if !ok || !res.OK {
				done <- "no common random number"
				return
			}
			done <- fmt.Sprintf("common random number %s from %d contributors", res.Value, len(res.Contributors))
		}}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	wait := time.Until(start)
	if wait < 0 {
		return fmt.Errorf("start instant already passed by %v; pick a later -start-at-ms", -wait)
	}
	fmt.Printf("node %d: listening on %s, starting %s run in %v (%d rounds of %v)\n",
		self, port.Addr(), *mode, wait.Round(time.Millisecond), rounds, 2**delta)
	// Arm the peer now; round 1 fires at the shared start instant, so no
	// round-1 message can reach a peer that is not yet started (S2).
	port.After(0, func() { peer.StartIn(proto, rounds, time.Until(start)) })

	timeout := time.Duration(rounds+4) * 2 * *delta * 2
	select {
	case msg := <-done:
		fmt.Printf("node %d: %s\n", self, msg)
	case <-time.After(timeout):
		// Dump what was captured anyway — a timed-out run is exactly the
		// one whose trace is worth reading.
		if derr := dump(); derr != nil {
			fmt.Fprintln(os.Stderr, "p2pnode:", derr)
		}
		return fmt.Errorf("timed out after %v", timeout)
	}
	return dump()
}

// writeExport creates path and streams one telemetry export into it.
func writeExport(path string, export func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// finishHook forwards a protocol and signals its finish.
type finishHook struct {
	runtime.Protocol
	onFinish func()
}

func (f *finishHook) OnFinish() {
	f.Protocol.OnFinish()
	f.onFinish()
}

// parsePeers parses "0=h:p,1=h:p,..." into a dense address table.
func parsePeers(s string, n int) (map[wire.NodeID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-peers is required (id=host:port for all %d nodes)", n)
	}
	out := make(map[wire.NodeID]string, n)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q", part)
		}
		var id int
		if _, err := fmt.Sscanf(kv[0], "%d", &id); err != nil || id < 0 || id >= n {
			return nil, fmt.Errorf("bad peer id %q", kv[0])
		}
		out[wire.NodeID(id)] = kv[1]
	}
	if len(out) != n {
		missing := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if _, ok := out[wire.NodeID(i)]; !ok {
				missing = append(missing, i)
			}
		}
		sort.Ints(missing)
		return nil, fmt.Errorf("peer table incomplete, missing ids %v", missing)
	}
	return out, nil
}

// enclaveMeasurement computes the expected program measurement.
func enclaveMeasurement(program []byte) xcrypto.Measurement {
	return xcrypto.Measure(program)
}
