// Command p2pnode runs one enclaved peer over real TCP — the live-network
// counterpart of the simulated experiments, demonstrating that the same
// protocol code (ERB, basic ERNG) runs over an actual network stack.
//
// A demo on one machine, 4 peers tolerating 1 byzantine node:
//
//	START=$(( $(date +%s%3N) + 3000 ))
//	for i in 0 1 2 3; do
//	  p2pnode -id $i -n 4 -t 1 \
//	    -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103 \
//	    -start-at-ms $START -mode erng &
//	done; wait
//
// All processes must share the -peers table and the -start-at-ms instant
// (the synchronized start, assumption S2). The peer with -id equal to
// -initiator broadcasts -message in erb mode; in erng mode every peer
// contributes enclave randomness and they agree on a common number.
//
// Under the scenario runner (cmd/p2pscenario) the address table and start
// instant come from the runner instead: -control points at the runner's
// barrier listener, the node picks an ephemeral port, reports it with
// READY, and receives the full PEERS table plus the shared START instant
// once every expected process has checked in. -epochs runs several
// back-to-back protocol epochs on one schedule; a process relaunched by a
// churn phase passes -resume-epoch to rejoin at the next epoch boundary
// with recomputed (bumped) sequence numbers, per the restart lifecycle.
//
// The demo shares one attestation-service key derived from -demo-secret:
// in a production deployment each enclave would be attested by the real
// IAS instead. Everything else — measurement-bound channels, AES+HMAC
// sealing, lockstep rounds, halt-on-divergence — is the real protocol.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"sgxp2p/internal/adversary"
	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/obsplane"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/tcpnet"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
	"sgxp2p/internal/xcrypto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "p2pnode:", err)
		os.Exit(1)
	}
}

// epochResult is one epoch's outcome in the -result-out JSON: what this
// node decided, in which round, so the scenario runner can assert
// cross-process invariants without parsing human-readable logs.
type epochResult struct {
	Epoch    int    `json:"epoch"`
	OK       bool   `json:"ok"`
	Accepted bool   `json:"accepted"`
	Value    string `json:"value,omitempty"`
	Round    uint32 `json:"round,omitempty"`
	Note     string `json:"note,omitempty"`
}

// nodeResult is the full -result-out document.
type nodeResult struct {
	ID     int           `json:"id"`
	Mode   string        `json:"mode"`
	N      int           `json:"n"`
	T      int           `json:"t"`
	Byz    bool          `json:"byz"`
	Epochs []epochResult `json:"epochs"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("p2pnode", flag.ContinueOnError)
	var (
		id         = fs.Int("id", 0, "this node's id in [0, n)")
		n          = fs.Int("n", 4, "network size")
		t          = fs.Int("t", 1, "byzantine bound (n >= 2t+1)")
		delta      = fs.Duration("delta", 250*time.Millisecond, "one-way delivery bound")
		peers      = fs.String("peers", "", "comma-separated id=host:port table for ALL nodes")
		control    = fs.String("control", "", "scenario runner barrier address; replaces -peers and -start-at-ms")
		listenAddr = fs.String("listen", "127.0.0.1:0", "listen address in -control mode (ephemeral port by default)")
		startAtMS  = fs.Int64("start-at-ms", 0, "synchronized start (unix ms); 0 = now + 3s, printed for reuse")
		mode       = fs.String("mode", "erb", "protocol: erb or erng")
		initiator  = fs.Int("initiator", 0, "erb mode: broadcasting node")
		message    = fs.String("message", "hello from the enclave", "erb mode: payload")
		epochs     = fs.Int("epochs", 1, "number of back-to-back protocol epochs to run")
		resume     = fs.Int("resume-epoch", 0, "rejoin a running schedule at this epoch (restart lifecycle: seqs are re-derived and bumped)")
		chainLen   = fs.Int("chain-len", 0, "nodes 0..chain-len-1 run the worst-case byzantine chain strategy (erb mode)")
		slow       = fs.String("slow", "", "slow-link shaping: 'all=50ms' or 'id=dur,id=dur' extra delay per outbound frame")
		connectTO  = fs.Duration("connect-timeout", 10*time.Second, "preflight: every peer must accept a TCP connection within this window")
		noPref     = fs.Bool("no-preflight", false, "skip the peer reachability preflight")
		noBatch    = fs.Bool("nobatch", false, "disable round-scoped frame coalescing (paper-faithful per-message wire accounting)")
		demoSecret = fs.Int64("demo-secret", 42, "shared demo attestation seed (all nodes must agree)")
		tracePath  = fs.String("trace", "", "write this node's telemetry event stream (JSONL) to a file on exit")
		metricsOut = fs.String("metrics-out", "", "write this node's metrics in Prometheus text format to a file on exit")
		resultOut  = fs.String("result-out", "", "write this node's per-epoch results as JSON to a file on exit")
		stream     = fs.Bool("stream", false, "stream telemetry events and metric deltas over the control connection during the run (-control mode)")
		spans      = fs.Bool("spans", false, "record causal span hops (seal/open/deliver/handle) keyed by sealed frame tag")
		probeEvery = fs.Duration("probe-interval", 0, "sample resource gauges (goroutines, heap, fds, link queues) at this interval; 0 = off")
		profileDir = fs.String("profile-dir", "", "capture pprof profiles into this directory on an orchestrator PROF request or on failure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 || *t < 0 || 2**t+1 > *n {
		return fmt.Errorf("invalid sizes n=%d t=%d", *n, *t)
	}
	if *epochs < 1 || *resume < 0 || *resume >= *epochs {
		return fmt.Errorf("invalid epoch schedule: epochs=%d resume-epoch=%d", *epochs, *resume)
	}
	if *stream && *control == "" {
		return fmt.Errorf("-stream needs a -control connection to stream over")
	}
	self := wire.NodeID(*id)

	// Address table and start instant: from the runner's barrier in
	// -control mode, from flags otherwise.
	var (
		addrs map[wire.NodeID]string
		start time.Time
		port  *tcpnet.Port
		ctrl  *controlConn
		err   error
	)
	if *control != "" {
		port, err = tcpnet.Listen(self, *listenAddr)
		if err != nil {
			return err
		}
		defer port.Close()
		ctrl, err = dialControl(*control, *id, port.Addr())
		if err != nil {
			return err
		}
		defer ctrl.Close()
		addrs, start, err = ctrl.AwaitStart(*n)
		if err != nil {
			return err
		}
	} else {
		addrs, err = parsePeers(*peers, *n)
		if err != nil {
			return err
		}
		port, err = tcpnet.Listen(self, addrs[self])
		if err != nil {
			return err
		}
		defer port.Close()
		start = time.UnixMilli(*startAtMS)
		if *startAtMS == 0 {
			start = time.Now().Add(3 * time.Second)
			fmt.Printf("node %d: starting at %d (pass -start-at-ms %d to the other nodes)\n",
				self, start.UnixMilli(), start.UnixMilli())
		}
	}
	port.SetOrigin(start)

	// Telemetry rides on the port's logical clock (time since the shared
	// start instant), so traces from different nodes of one run line up.
	// Streaming implies a tracer and registry even without the dump flags:
	// the live plane's whole point is observing a node that never dumps.
	var trace *telemetry.Tracer
	var metrics *telemetry.Metrics
	if *tracePath != "" || *stream {
		trace = telemetry.New(telemetry.Options{Clock: port.Now, Spans: *spans})
	}
	if *metricsOut != "" || *stream || *probeEvery > 0 {
		metrics = telemetry.NewMetrics()
		port.SetMetrics(metrics)
	}
	var probe *obsplane.Probe
	if *probeEvery > 0 {
		probe = obsplane.StartProbe(obsplane.ProbeConfig{
			Metrics:  metrics,
			Interval: *probeEvery,
			Queue: func() (int, int, int) {
				qs := port.QueueStats()
				return qs.Links, qs.Total, qs.Max
			},
		})
	}
	var exporter *streamer
	if *stream {
		exporter = startStreamer(ctrl, trace, metrics, *tracePath == "")
	}
	watchProfileRequests(ctrl, *profileDir, *id)
	// stopLive quiesces the live plane in dependency order: the probe's
	// final sample lands in the registry, then the exporter's final drain
	// ships it. Idempotent, so the success, failure and signal paths can
	// all run it.
	stopLive := func() {
		probe.Stop()
		exporter.Stop()
	}
	results := &nodeResult{ID: *id, Mode: *mode, N: *n, T: *t, Byz: int(self) < *chainLen}
	// dump is serialized: the signal handler below may run it concurrently
	// with the main goroutine's exit path, and both must see a quiesced
	// live plane and whole files.
	var dumpMu sync.Mutex
	dump := func() error {
		dumpMu.Lock()
		defer dumpMu.Unlock()
		stopLive()
		if trace != nil && *tracePath != "" {
			if werr := writeExport(*tracePath, trace.ExportJSONL); werr != nil {
				return werr
			}
		}
		if metrics != nil && *metricsOut != "" {
			if werr := writeExport(*metricsOut, metrics.ExportPrometheus); werr != nil {
				return werr
			}
		}
		if *resultOut != "" {
			if werr := writeExport(*resultOut, func(w io.Writer) error {
				enc := json.NewEncoder(w)
				return enc.Encode(results)
			}); werr != nil {
				return werr
			}
		}
		return nil
	}
	// fail dumps whatever telemetry exists before returning the error, so
	// a run that never gets off the ground still leaves its trace behind —
	// plus a heap snapshot when profiling is on, so a FAIL is diagnosable
	// even if the orchestrator never sends PROF.
	fail := func(ferr error) error {
		captureHeapProfile(*profileDir, *id)
		if derr := dump(); derr != nil {
			fmt.Fprintln(os.Stderr, "p2pnode:", derr)
		}
		if ctrl != nil {
			ctrl.Fail(ferr)
		}
		return ferr
	}

	// A terminating signal flushes before exiting: churn phases and manual
	// interrupts get the same artifacts as a clean run. (SIGKILL cannot be
	// caught — there the streamed prefix at the orchestrator is all that
	// survives, which is exactly what live export is for.)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-sigc
		signal.Stop(sigc)
		fmt.Fprintf(os.Stderr, "p2pnode: %v: flushing telemetry before exit\n", sig)
		if derr := dump(); derr != nil {
			fmt.Fprintln(os.Stderr, "p2pnode:", derr)
		}
		os.Exit(1)
	}()

	// Slow-link shaping, applied before any traffic flows.
	if serr := applyShaping(port, *slow, *n); serr != nil {
		return fail(serr)
	}

	// Preflight: every peer must be accepting connections. Without it a
	// missing peer means hanging until the run timeout with nothing to
	// show; with it the node exits nonzero promptly, telemetry dumped.
	if !*noPref {
		if perr := preflight(addrs, self, *connectTO); perr != nil {
			return fail(perr)
		}
	}
	port.Connect(addrs)

	// Demo attestation: every node derives the same service key from the
	// shared demo secret, so quotes verify across processes without an
	// online attestation service.
	service, err := enclave.NewAttestationService(mrand.New(mrand.NewSource(*demoSecret)))
	if err != nil {
		return fail(err)
	}
	program := []byte("sgxp2p/p2pnode/v1")
	clock := enclave.NewWallClock()

	// Demo key exchange: with no out-of-band channel in the demo, each
	// node derives every peer's enclave deterministically from the shared
	// secret, standing in for the quote exchange of the setup phase. A
	// relaunched process replays the identical derivation, so its session
	// keys match the survivors' without channel re-establishment.
	roster := runtime.Roster{
		Quotes:      make([]enclave.Quote, *n),
		ServiceKey:  service.VerifyKey(),
		Measurement: enclaveMeasurement(program),
	}
	var encl *enclave.Enclave
	seqs := make([]uint64, *n)
	for i := 0; i < *n; i++ {
		peerRng := mrand.New(mrand.NewSource(*demoSecret ^ int64(i+1)*0x9E3779B9))
		e, lerr := enclave.Launch(program, wire.NodeID(i), peerRng, clock)
		if lerr != nil {
			return fail(lerr)
		}
		if wire.NodeID(i) == self {
			encl = e
		}
		roster.Quotes[i] = service.Attest(e)
		s, serr := e.RandomSeq()
		if serr != nil {
			return fail(serr)
		}
		// Restart lifecycle: every elapsed epoch bumped each node's seq
		// by one, so a resumed process recomputes rather than copies.
		seqs[i] = s + uint64(*resume)
	}

	// Byzantine role: nodes below -chain-len interpose the worst-case
	// chain adversary (Section 6.3) between protocol and wire.
	var transport runtime.Transport = port
	if int(self) < *chainLen {
		chain := make([]wire.NodeID, *chainLen)
		for i := range chain {
			chain[i] = wire.NodeID(i)
		}
		transport = adversary.Wrap(self, port, adversary.Chain(chain, int(self), wire.NodeID(*chainLen)), *demoSecret+int64(self))
	}

	peer, err := runtime.NewPeer(encl, transport, roster, runtime.Config{
		N: *n, T: *t, Delta: *delta, Trace: trace, Metrics: metrics,
		DisableBatching: *noBatch,
	})
	if err != nil {
		return fail(err)
	}
	if err := peer.InstallSeqs(seqs); err != nil {
		return fail(err)
	}
	if *resume > 0 {
		peer.AlignInstance(uint32(*resume))
	}

	runErr := runEpochs(epochsConfig{
		peer: peer, port: port, self: self,
		mode: *mode, initiator: *initiator, message: *message,
		n: *n, t: *t, delta: *delta,
		epochs: *epochs, resume: *resume,
		start: start, byz: results.Byz,
	}, results)
	if runErr != nil {
		return fail(runErr)
	}
	// Artifacts before DONE: the orchestrator may reap the fleet the
	// moment the last node reports, so the trace and result files must
	// already be on disk when the control message leaves.
	if derr := dump(); derr != nil {
		return fail(derr)
	}
	if ctrl != nil {
		ctrl.Done()
	}
	return nil
}

// epochsConfig carries everything the epoch loop needs.
type epochsConfig struct {
	peer      *runtime.Peer
	port      *tcpnet.Port
	self      wire.NodeID
	mode      string
	initiator int
	message   string
	n, t      int
	delta     time.Duration
	epochs    int
	resume    int
	start     time.Time
	byz       bool
}

// epochWindow is the wall-clock length of one epoch slot: the protocol's
// rounds plus two rounds of slack for finish callbacks and stragglers.
func epochWindow(rounds int, delta time.Duration) time.Duration {
	return time.Duration(rounds+2) * 2 * delta
}

// runEpochs drives the shared epoch schedule: epoch e starts at
// start + e*window; every node runs the protocol, then bumps its sequence
// table at the epoch boundary, exactly like the managed restart
// lifecycle. A process that joined with -resume-epoch starts at its first
// scheduled slot; earlier epochs belong to its previous incarnation.
func runEpochs(cfg epochsConfig, results *nodeResult) error {
	firstProto, firstDone, protoRounds, err := buildProtocol(cfg)
	if err != nil {
		return err
	}
	window := epochWindow(protoRounds, cfg.delta)
	fmt.Printf("node %d: listening on %s, %s run: epochs %d..%d of %d rounds, window %v\n",
		cfg.self, cfg.port.Addr(), cfg.mode, cfg.resume, cfg.epochs-1, protoRounds, window)

	for e := cfg.resume; e < cfg.epochs; e++ {
		epochStart := cfg.start.Add(time.Duration(e) * window)
		if e == cfg.resume {
			if wait := time.Until(epochStart); wait < 0 {
				return fmt.Errorf("epoch %d start already passed by %v; pick a later start", e, -wait)
			}
		}
		proto, done, rounds := firstProto, firstDone, protoRounds
		if e > cfg.resume {
			var perr error
			proto, done, rounds, perr = buildProtocol(cfg)
			if perr != nil {
				return perr
			}
		}
		peer := cfg.peer
		cfg.port.After(0, func() { peer.StartIn(proto, rounds, time.Until(epochStart)) })

		// The epoch deadline leaves the full window plus one spare window
		// of wall-clock grace (process scheduling, dump time).
		deadline := time.Until(epochStart) + 2*window
		res := epochResult{Epoch: e}
		select {
		case out := <-done:
			res.OK, res.Accepted, res.Value, res.Round, res.Note = out.ok, out.accepted, out.value, out.round, out.note
			fmt.Printf("node %d: epoch %d: %s\n", cfg.self, e, out.note)
		case <-time.After(deadline):
			res.Note = "no finish before epoch deadline"
			fmt.Printf("node %d: epoch %d: %s\n", cfg.self, e, res.Note)
			if !cfg.byz {
				results.Epochs = append(results.Epochs, res)
				return fmt.Errorf("epoch %d timed out after %v", e, deadline)
			}
			// A byzantine node halted by P4 never finishes — that is the
			// protocol working, not a failure; keep its schedule aligned.
		}
		results.Epochs = append(results.Epochs, res)
		if e+1 < cfg.epochs {
			cfg.port.After(0, func() { peer.BumpSeqs() })
		}
	}
	return nil
}

// epochOutcome is what one epoch's finish callback reports.
type epochOutcome struct {
	ok       bool
	accepted bool
	value    string
	round    uint32
	note     string
}

// buildProtocol constructs a fresh protocol instance for one epoch and
// the channel its finish outcome arrives on.
func buildProtocol(cfg epochsConfig) (runtime.Protocol, chan epochOutcome, int, error) {
	done := make(chan epochOutcome, 1)
	switch cfg.mode {
	case "erb":
		eng, err := erb.NewEngine(cfg.peer, erb.Config{
			T:                  cfg.t,
			ExpectedInitiators: []wire.NodeID{wire.NodeID(cfg.initiator)},
		})
		if err != nil {
			return nil, nil, 0, err
		}
		if int(cfg.self) == cfg.initiator {
			var v wire.Value
			copy(v[:], cfg.message)
			eng.SetInput(v)
		}
		proto := &finishHook{Protocol: eng, onFinish: func() {
			res, ok := eng.Result(wire.NodeID(cfg.initiator))
			switch {
			case !ok:
				done <- epochOutcome{note: "no decision"}
			case !res.Accepted:
				done <- epochOutcome{ok: true, round: res.Round, note: "accepted bottom"}
			default:
				done <- epochOutcome{
					ok: true, accepted: true,
					value: fmt.Sprintf("%x", res.Value[:]),
					round: res.Round,
					note:  fmt.Sprintf("accepted %q in round %d", strings.TrimRight(string(res.Value[:]), "\x00"), res.Round),
				}
			}
		}}
		return proto, done, eng.Rounds(), nil
	case "erng":
		b, err := erng.NewBasic(cfg.peer, cfg.t)
		if err != nil {
			return nil, nil, 0, err
		}
		proto := &finishHook{Protocol: b, onFinish: func() {
			res, ok := b.Result()
			if !ok || !res.OK {
				done <- epochOutcome{note: "no common random number"}
				return
			}
			done <- epochOutcome{
				ok: true, accepted: true,
				value: fmt.Sprintf("%x", res.Value[:]),
				round: res.Round,
				note:  fmt.Sprintf("common random number %s from %d contributors", res.Value, len(res.Contributors)),
			}
		}}
		return proto, done, b.Rounds(), nil
	default:
		return nil, nil, 0, fmt.Errorf("unknown mode %q", cfg.mode)
	}
}

// preflight verifies every peer's listener accepts a TCP connection
// within the window, retrying until the deadline. A peer that never
// comes up is reported by id and address so the failure is actionable.
func preflight(addrs map[wire.NodeID]string, self wire.NodeID, window time.Duration) error {
	deadline := time.Now().Add(window)
	ids := make([]int, 0, len(addrs))
	for id := range addrs {
		if id != self {
			ids = append(ids, int(id))
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		addr := addrs[wire.NodeID(id)]
		for {
			c, err := net.DialTimeout("tcp", addr, time.Second)
			if err == nil {
				c.Close()
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("peer %d (%s) never accepted a connection within %v: %w", id, addr, window, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// applyShaping parses the -slow spec and installs per-destination send
// delays: "all=50ms" shapes every link, "2=50ms,3=100ms" individual ones.
func applyShaping(port *tcpnet.Port, spec string, n int) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -slow entry %q", part)
		}
		d, err := time.ParseDuration(kv[1])
		if err != nil {
			return fmt.Errorf("bad -slow duration %q: %w", kv[1], err)
		}
		if kv[0] == "all" {
			port.SetSendDelayAll(d)
			continue
		}
		var id int
		if _, err := fmt.Sscanf(kv[0], "%d", &id); err != nil || id < 0 || id >= n {
			return fmt.Errorf("bad -slow peer id %q", kv[0])
		}
		port.SetSendDelay(wire.NodeID(id), d)
	}
	return nil
}

// controlConn is the node side of the scenario runner's barrier: a
// line-oriented TCP conversation (READY → PEERS+START → DONE/FAIL),
// which in -stream mode also multiplexes live telemetry (EV/MT lines
// node→runner) and profile requests (PROF lines runner→node). The write
// mutex keeps the streamer's lines whole against DONE/FAIL.
type controlConn struct {
	conn net.Conn
	rd   *bufio.Reader
	mu   sync.Mutex
}

// dialControl connects to the runner and announces this node's listen
// address.
func dialControl(addr string, id int, listenAddr string) (*controlConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("control %s: %w", addr, err)
	}
	if _, err := fmt.Fprintf(conn, "READY %d %s\n", id, listenAddr); err != nil {
		conn.Close()
		return nil, err
	}
	return &controlConn{conn: conn, rd: bufio.NewReader(conn)}, nil
}

// AwaitStart blocks until the runner releases the barrier, returning the
// full address table and the shared start instant.
func (c *controlConn) AwaitStart(n int) (map[wire.NodeID]string, time.Time, error) {
	peersLine, err := c.readLine("PEERS")
	if err != nil {
		return nil, time.Time{}, err
	}
	addrs, err := parsePeers(peersLine, n)
	if err != nil {
		return nil, time.Time{}, err
	}
	startLine, err := c.readLine("START")
	if err != nil {
		return nil, time.Time{}, err
	}
	var ms int64
	if _, err := fmt.Sscanf(startLine, "%d", &ms); err != nil {
		return nil, time.Time{}, fmt.Errorf("control: bad START %q", startLine)
	}
	return addrs, time.UnixMilli(ms), nil
}

// readLine reads one control line and strips the expected verb.
func (c *controlConn) readLine(verb string) (string, error) {
	if err := c.conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
		return "", err
	}
	line, err := c.rd.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("control: reading %s: %w", verb, err)
	}
	line = strings.TrimSpace(line)
	rest, found := strings.CutPrefix(line, verb+" ")
	if !found {
		return "", fmt.Errorf("control: expected %s, got %q", verb, line)
	}
	return rest, nil
}

// Done reports successful completion to the runner.
func (c *controlConn) Done() {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = fmt.Fprintf(c.conn, "DONE\n")
}

// Fail reports an error to the runner.
func (c *controlConn) Fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = fmt.Fprintf(c.conn, "FAIL %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
}

// StreamEvent ships one sequence-numbered telemetry event line.
func (c *controlConn) StreamEvent(seq uint64, line []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = fmt.Fprintf(c.conn, "EV %d %s\n", seq, line)
}

// StreamMetric ships one changed metric row.
func (c *controlConn) StreamMetric(seq uint64, mv telemetry.MetricValue) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = fmt.Fprintf(c.conn, "MT %d %s %s %g\n", seq, mv.Kind, mv.Name, mv.Value)
}

// ReadVerbLine reads one runner→node line after the barrier released —
// the profile-request watcher's loop. No deadline: the watcher lives
// until the connection closes.
func (c *controlConn) ReadVerbLine() (string, error) {
	if err := c.conn.SetReadDeadline(time.Time{}); err != nil {
		return "", err
	}
	line, err := c.rd.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// Close closes the control connection.
func (c *controlConn) Close() error { return c.conn.Close() }

// writeExport creates path and streams one telemetry export into it.
func writeExport(path string, export func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// finishHook forwards a protocol and signals its finish.
type finishHook struct {
	runtime.Protocol
	onFinish func()
}

func (f *finishHook) OnFinish() {
	f.Protocol.OnFinish()
	f.onFinish()
}

// parsePeers parses "0=h:p,1=h:p,..." into a dense address table.
func parsePeers(s string, n int) (map[wire.NodeID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-peers is required (id=host:port for all %d nodes)", n)
	}
	out := make(map[wire.NodeID]string, n)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q", part)
		}
		var id int
		if _, err := fmt.Sscanf(kv[0], "%d", &id); err != nil || id < 0 || id >= n {
			return nil, fmt.Errorf("bad peer id %q", kv[0])
		}
		out[wire.NodeID(id)] = kv[1]
	}
	if len(out) != n {
		missing := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if _, ok := out[wire.NodeID(i)]; !ok {
				missing = append(missing, i)
			}
		}
		sort.Ints(missing)
		return nil, fmt.Errorf("peer table incomplete, missing ids %v", missing)
	}
	return out, nil
}

// enclaveMeasurement computes the expected program measurement.
func enclaveMeasurement(program []byte) xcrypto.Measurement {
	return xcrypto.Measure(program)
}
