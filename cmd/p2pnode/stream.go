package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"sgxp2p/internal/telemetry"
)

// streamInterval is how often the live exporter drains new telemetry
// onto the control connection. Short enough that the orchestrator's
// per-round percentiles track the fleet live, long enough that a node
// writes a handful of syscalls per round, not per event.
const streamInterval = 200 * time.Millisecond

// streamer is the live telemetry exporter: a goroutine that polls the
// tracer's event stream and the metrics registry and writes what changed
// to the scenario control connection, framed one record per line:
//
//	EV <seq> <event-jsonl>          sequence-numbered trace events
//	MT <seq> <kind> <name> <value>  metric rows whose value changed
//
// The event seq is the tracer's own stream sequence (telemetry.Event.Seq),
// so the orchestrator can detect gaps and deduplicate re-sent prefixes
// after a reconnect (MergeEvents is Seq-aware). The exporter never blocks
// the protocol: it reads snapshots outside the runtime's event loop and
// owns no locks the hot path touches.
type streamer struct {
	ctrl    *controlConn
	trace   *telemetry.Tracer
	metrics *telemetry.Metrics

	stop chan struct{}
	done chan struct{}
	once sync.Once

	cursor  uint64
	mseq    uint64
	last    map[string]float64
	release bool
}

// startStreamer begins live export. Returns nil when there is no control
// connection to stream over. release marks stream-only mode (no -trace
// exit dump): shipped event prefixes are released from the tracer so a
// long run's memory stays bounded by the flush interval, not the run.
func startStreamer(ctrl *controlConn, trace *telemetry.Tracer, metrics *telemetry.Metrics, release bool) *streamer {
	if ctrl == nil {
		return nil
	}
	s := &streamer{
		ctrl: ctrl, trace: trace, metrics: metrics,
		stop: make(chan struct{}), done: make(chan struct{}),
		last: make(map[string]float64), release: release,
	}
	go s.loop()
	return s
}

func (s *streamer) loop() {
	defer close(s.done)
	t := time.NewTicker(streamInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.flush()
		case <-s.stop:
			s.flush()
			return
		}
	}
}

// flush drains every event recorded since the last flush and every
// metric row whose value changed.
func (s *streamer) flush() {
	for _, ev := range s.trace.Since(s.cursor) {
		s.cursor++
		line, err := telemetry.MarshalEvent(ev)
		if err != nil {
			continue
		}
		s.ctrl.StreamEvent(ev.Seq, line)
	}
	if s.release {
		s.trace.Release(s.cursor)
	}
	for _, mv := range s.metrics.Snapshot() {
		k := mv.Kind + " " + mv.Name
		if prev, seen := s.last[k]; seen && prev == mv.Value {
			continue
		}
		s.last[k] = mv.Value
		s.mseq++
		s.ctrl.StreamMetric(s.mseq, mv)
	}
}

// Stop drains one final time and halts the exporter. Safe on nil and
// safe to call twice — the fail path and the signal handler both run it.
func (s *streamer) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// watchProfileRequests reads control lines after the barrier released us:
// a PROF line from the orchestrator (sent when an invariant fails or a
// node times out) captures CPU and heap profiles into dir. The goroutine
// owns the control reader from here on — nothing else reads after
// AwaitStart — and exits when the connection closes.
func watchProfileRequests(ctrl *controlConn, dir string, id int) {
	if ctrl == nil || dir == "" {
		return
	}
	go func() {
		for {
			line, err := ctrl.ReadVerbLine()
			if err != nil {
				return
			}
			if line == "PROF" {
				captureProfiles(dir, id)
			}
		}
	}()
}

// cpuProfileWindow is how long the on-demand CPU profile samples. The
// orchestrator waits for it before reaping the fleet.
const cpuProfileWindow = 2 * time.Second

// captureProfiles writes cpu-<id>.pprof and heap-<id>.pprof into dir.
// Best-effort by design: profiling a wedged process must never make
// things worse, so failures only log.
func captureProfiles(dir string, id int) {
	cpuPath := filepath.Join(dir, fmt.Sprintf("cpu-%d.pprof", id))
	if f, err := os.Create(cpuPath); err == nil {
		if err := pprof.StartCPUProfile(f); err == nil {
			time.Sleep(cpuProfileWindow)
			pprof.StopCPUProfile()
		}
		f.Close()
	}
	captureHeapProfile(dir, id)
}

// captureHeapProfile writes heap-<id>.pprof into dir — also called by the
// node's own failure path, so a FAIL always leaves a heap snapshot even
// when the orchestrator never asks.
func captureHeapProfile(dir string, id int) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("heap-%d.pprof", id))
	f, err := os.Create(path)
	if err != nil {
		return
	}
	_ = pprof.Lookup("heap").WriteTo(f, 0)
	f.Close()
}
