// Command p2pexp regenerates the tables and figures of "Robust P2P
// Primitives Using SGX Enclaves" (ICDCS 2020) on the simulated testbed.
//
// Usage:
//
//	p2pexp -experiment all            # everything, default scale
//	p2pexp -experiment fig2a -full    # one figure at paper scale
//	p2pexp -experiment tab1 -csv      # machine-readable output
//
// Experiment ids: fig2a fig2b fig2c fig3a fig3b fig3c tab1 tab2 sanitize
// bias ablate chaos (see DESIGN.md for the per-experiment index).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"sgxp2p/internal/chaos"
	"sgxp2p/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "p2pexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("p2pexp", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id or 'all'")
		full       = fs.Bool("full", false, "run the paper-scale sweeps (slower)")
		seed       = fs.Int64("seed", 1, "deterministic seed")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		delta      = fs.Duration("delta", time.Second, "base one-way delivery bound (a round is 2*delta)")
		unlimited  = fs.Bool("unlimited-bandwidth", false, "disable the shared-link model")
		workers    = fs.Int("workers", 0, "goroutines sweeping independent data points (0 = all cores, 1 = serial); tables are identical for any value")
		chaosSeed  = fs.Int64("chaos-seed", 0, "replay a single chaos fault schedule by seed (chaos experiment only)")
		tracePath  = fs.String("trace", "", "run one traced chaos replay and write its JSONL event stream to this file")
		metricsOut = fs.String("metrics-out", "", "with -trace: also write the run's metrics in Prometheus text format")
		traceProto = fs.String("trace-proto", "erb", "traced replay protocol: erb, erng or erng-opt")
		traceN     = fs.Int("trace-n", 9, "traced replay network size")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	if *tracePath != "" || *metricsOut != "" {
		traceSeed := *chaosSeed
		if traceSeed == 0 {
			traceSeed = *seed
		}
		return tracedRun(*traceProto, *traceN, traceSeed, *tracePath, *metricsOut)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p2pexp:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "p2pexp:", err)
			}
		}()
	}

	// Experiment sweeps allocate heavily and transiently; a lazier GC
	// roughly halves wall-clock time for the big figures.
	debug.SetGCPercent(400)

	cfg := experiments.Config{
		Full:      *full,
		Seed:      *seed,
		Delta:     *delta,
		Workers:   *workers,
		ChaosSeed: *chaosSeed,
	}
	if *unlimited {
		cfg.Bandwidth = experiments.Unlimited
	}

	var tables []*experiments.Table
	if *experiment == "all" {
		all, err := experiments.All(cfg)
		if err != nil {
			return err
		}
		tables = all
	} else {
		runner, err := experiments.Get(*experiment)
		if err != nil {
			return err
		}
		start := time.Now()
		tbl, err := runner(cfg)
		if err != nil {
			return err
		}
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("generated in %.1fs wall-clock", time.Since(start).Seconds()))
		tables = []*experiments.Table{tbl}
	}

	for _, tbl := range tables {
		if *csv {
			if err := tbl.CSV(os.Stdout); err != nil {
				return err
			}
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// tracedRun executes one seeded chaos replay with telemetry enabled and
// exports the trace (JSONL) and metrics (Prometheus text). The invariant
// verdict is printed but never turns into a non-zero exit: the point of a
// traced replay is to capture the evidence, violation included.
func tracedRun(proto string, n int, seed int64, tracePath, metricsPath string) error {
	var (
		o     *chaos.Outcome
		err   error
		check func(*chaos.Outcome) error
	)
	switch proto {
	case "erb":
		o, err = chaos.RunERB(seed, n, (n-1)/2)
		check = chaos.CheckERB
	case "erng":
		o, err = chaos.RunERNG(seed, n, (n-1)/2, false)
		check = chaos.CheckERNG
	case "erng-opt":
		o, err = chaos.RunERNG(seed, n, n/3, true)
		check = chaos.CheckERNG
	default:
		return fmt.Errorf("unknown -trace-proto %q (want erb, erng or erng-opt)", proto)
	}
	if err != nil {
		return err
	}

	if tracePath != "" {
		if err := writeFileWith(tracePath, o.Trace.ExportJSONL); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		if err := writeFileWith(metricsPath, o.Metrics.ExportPrometheus); err != nil {
			return err
		}
	}

	fmt.Printf("traced %s replay: seed=%d n=%d t=%d schedule %s\n", proto, o.Seed, o.N, o.T, o.Schedule)
	fmt.Printf("events=%d hash=%#016x trace-hash=%#016x\n", o.Events, o.EventsHash, o.TraceHash)
	if verr := check(o); verr != nil {
		fmt.Printf("invariants: VIOLATED\n%v\n", verr)
	} else {
		fmt.Println("invariants: held")
	}
	return nil
}

// writeFileWith creates path and streams export into it.
func writeFileWith(path string, export func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
