// Command p2pexp regenerates the tables and figures of "Robust P2P
// Primitives Using SGX Enclaves" (ICDCS 2020) on the simulated testbed.
//
// Usage:
//
//	p2pexp -experiment all            # everything, default scale
//	p2pexp -experiment fig2a -full    # one figure at paper scale
//	p2pexp -experiment tab1 -csv      # machine-readable output
//
// Experiment ids: fig2a fig2b fig2c fig3a fig3b fig3c tab1 tab2 sanitize
// bias ablate chaos (see DESIGN.md for the per-experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"sgxp2p/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "p2pexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("p2pexp", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id or 'all'")
		full       = fs.Bool("full", false, "run the paper-scale sweeps (slower)")
		seed       = fs.Int64("seed", 1, "deterministic seed")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		delta      = fs.Duration("delta", time.Second, "base one-way delivery bound (a round is 2*delta)")
		unlimited  = fs.Bool("unlimited-bandwidth", false, "disable the shared-link model")
		workers    = fs.Int("workers", 0, "goroutines sweeping independent data points (0 = all cores, 1 = serial); tables are identical for any value")
		chaosSeed  = fs.Int64("chaos-seed", 0, "replay a single chaos fault schedule by seed (chaos experiment only)")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p2pexp:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "p2pexp:", err)
			}
		}()
	}

	// Experiment sweeps allocate heavily and transiently; a lazier GC
	// roughly halves wall-clock time for the big figures.
	debug.SetGCPercent(400)

	cfg := experiments.Config{
		Full:      *full,
		Seed:      *seed,
		Delta:     *delta,
		Workers:   *workers,
		ChaosSeed: *chaosSeed,
	}
	if *unlimited {
		cfg.Bandwidth = experiments.Unlimited
	}

	var tables []*experiments.Table
	if *experiment == "all" {
		all, err := experiments.All(cfg)
		if err != nil {
			return err
		}
		tables = all
	} else {
		runner, err := experiments.Get(*experiment)
		if err != nil {
			return err
		}
		start := time.Now()
		tbl, err := runner(cfg)
		if err != nil {
			return err
		}
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("generated in %.1fs wall-clock", time.Since(start).Seconds()))
		tables = []*experiments.Table{tbl}
	}

	for _, tbl := range tables {
		if *csv {
			if err := tbl.CSV(os.Stdout); err != nil {
				return err
			}
			continue
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
