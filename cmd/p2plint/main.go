// Command p2plint is the project's static-analysis gate: a multichecker
// over the custom analyzers in internal/lint that mechanically enforce the
// reproduction's determinism (P1/F2), enclave-boundary error handling and
// lockstep scheduling (P5) invariants, plus locally reimplemented shadow
// and nilness passes. It is wired into `make lint` and the tier-1 `make
// verify` gate; see DESIGN.md §9.
//
// Usage:
//
//	p2plint [-only name,name] [packages...]
//
// Packages default to ./... resolved from the enclosing module root. The
// exit status is 1 when any finding survives suppression; suppress
// deliberate violations in-source with `//lint:allow <analyzer> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sgxp2p/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, strings.Split(*only, ","))
	}

	root, err := lint.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "p2plint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func selectAnalyzers(all []*lint.Analyzer, names []string) []*lint.Analyzer {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range names {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			fatal(fmt.Errorf("unknown analyzer %q (use -list)", n))
		}
		out = append(out, a)
	}
	return out
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: p2plint [-only name,name] [packages...]\n\nAnalyzers:\n")
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress with `//lint:allow <analyzer> <reason>` on or above the offending line.\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2plint:", err)
	os.Exit(1)
}
