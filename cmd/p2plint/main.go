// Command p2plint is the project's static-analysis gate: a multichecker
// over the custom analyzers in internal/lint that mechanically enforce the
// reproduction's determinism (P1/F2), enclave-boundary error handling and
// lockstep scheduling (P5) invariants, the locally reimplemented shadow and
// nilness passes, and the interprocedural seal-boundary battery (sealflow,
// keyleak, lockorder — see DESIGN.md §14) built on internal/lint/flow. It
// is wired into `make lint` and the tier-1 `make verify` gate.
//
// Usage:
//
//	p2plint [-only name,name] [-json] [-baseline file] [packages...]
//
// Packages default to ./... resolved from the enclosing module root. The
// exit status is 1 when any finding survives suppression (and, with
// -baseline, is not present in the baseline); suppress deliberate
// violations in-source with `//lint:allow <analyzer> <reason>`.
//
// -json prints findings as a JSON array ({file,line,col,analyzer,message}
// with module-relative file paths); `p2plint -json > lint-baseline.json`
// is the way to (re)record a baseline. -baseline compares findings against
// such a file by (analyzer, file, message) — line numbers are ignored so
// unrelated edits don't invalidate it — and fails only on new findings,
// keeping CI green during an incremental burn-down.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sgxp2p/internal/lint"
)

// jsonDiag is the machine-readable form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "print findings as a JSON array")
	baseline := flag.String("baseline", "", "fail only on findings not present in this baseline file (JSON, as written by -json)")
	flag.Usage = usage
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, strings.Split(*only, ","))
	}

	root, err := lint.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.LintModule(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     relPath(root, d.Position.Filename),
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	if *baseline != "" {
		known, err := loadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		kept := out[:0]
		for _, d := range out {
			if !known[baselineKey(d)] {
				kept = append(kept, d)
			}
		}
		out = kept
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range out {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(out) > 0 {
		fmt.Fprintf(os.Stderr, "p2plint: %d finding(s)\n", len(out))
		os.Exit(1)
	}
}

// baselineKey identifies a finding across unrelated edits: the line number
// is deliberately excluded.
func baselineKey(d jsonDiag) string {
	return d.Analyzer + "\x00" + d.File + "\x00" + d.Message
}

func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var diags []jsonDiag
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	known := make(map[string]bool, len(diags))
	for _, d := range diags {
		known[baselineKey(d)] = true
	}
	return known, nil
}

func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

func selectAnalyzers(all []*lint.Analyzer, names []string) []*lint.Analyzer {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range names {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			fatal(fmt.Errorf("unknown analyzer %q (use -list)", n))
		}
		out = append(out, a)
	}
	return out
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: p2plint [-only name,name] [-json] [-baseline file] [packages...]\n\nAnalyzers:\n")
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress with `//lint:allow <analyzer> <reason>` on or above the offending line.\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2plint:", err)
	os.Exit(1)
}
