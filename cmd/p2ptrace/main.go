// Command p2ptrace inspects JSONL telemetry traces produced by
// p2pexp -trace and p2pnode -trace.
//
// Usage:
//
//	p2ptrace run.jsonl            # pretty-print the per-round timeline
//	p2ptrace -instance 3 run.jsonl  # timeline of one protocol instance only
//	p2ptrace -check run.jsonl     # strict schema + monotonicity check
//	p2ptrace -diff a.jsonl b.jsonl  # first diverging line (exit 1 if any)
//	p2ptrace -merge n0.jsonl n1.jsonl ...  # time-ordered merge to stdout
//	p2ptrace -spans merged.jsonl  # reconstruct causal spans, per-hop histograms
//	p2ptrace -spans -graph out.jsonl merged.jsonl  # also write the span graph
//
// -diff is the determinism witness: two traced runs of the same seed must
// be byte-identical, so any reported divergence is a reproducibility bug
// (or two genuinely different runs).
//
// -spans joins the seal/open/deliver/handle hop events of one or more
// traces (a span-enabled run: p2pnode -spans, or the scenario runner's
// merged/streamed archives) into cross-process happens-before chains and
// prints each hop's latency distribution.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sgxp2p/internal/obsplane"
	"sgxp2p/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "p2ptrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("p2ptrace", flag.ContinueOnError)
	var (
		check    = fs.Bool("check", false, "validate the trace (schema, kinds, monotone timestamps) and print its event count")
		diff     = fs.Bool("diff", false, "compare two traces line by line; exit 1 on the first divergence")
		merge    = fs.Bool("merge", false, "merge per-process traces into one time-ordered JSONL stream on stdout")
		spans    = fs.Bool("spans", false, "reconstruct causal span chains and print per-hop latency histograms")
		graph    = fs.String("graph", "", "-spans: also write the reconstructed span graph as JSONL to this file")
		instance = fs.Int("instance", -1, "filter the timeline to one protocol instance id (multiplexed traces)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spans {
		if fs.NArg() < 1 {
			return fmt.Errorf("-spans needs at least one trace file")
		}
		return spanReport(os.Stdout, fs.Args(), *graph)
	}
	if *merge {
		if fs.NArg() < 1 {
			return fmt.Errorf("-merge needs at least one trace file")
		}
		return mergeTraces(os.Stdout, fs.Args())
	}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two trace files, got %d", fs.NArg())
		}
		return diffTraces(fs.Arg(0), fs.Arg(1))
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one trace file, got %d", fs.NArg())
	}
	if *check {
		return checkTrace(fs.Arg(0))
	}
	if *instance > 1<<32-1 {
		return fmt.Errorf("-instance %d out of range", *instance)
	}
	return printTimeline(os.Stdout, fs.Arg(0), *instance)
}

// printTimeline renders a trace as the per-round timeline, optionally
// filtered to one protocol instance (instance < 0 keeps everything).
func printTimeline(w io.Writer, path string, instance int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		return err
	}
	if instance >= 0 {
		events = telemetry.FilterInstance(events, uint32(instance))
	}
	return telemetry.WriteTimeline(w, events)
}

// mergeTraces interleaves per-process traces into one globally
// time-ordered stream — the form the scenario runner archives so a
// multi-process run can be read (and -check'ed) as a single timeline.
func mergeTraces(w io.Writer, paths []string) error {
	streams := make([][]telemetry.Event, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		events, err := telemetry.ReadJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		streams = append(streams, events)
	}
	return telemetry.WriteJSONL(w, telemetry.MergeEvents(streams...))
}

// spanReport merges the given traces, reconstructs the causal span graph
// and prints the per-hop latency histograms; graphOut, when set, receives
// the graph itself as JSONL.
func spanReport(w io.Writer, paths []string, graphOut string) error {
	streams := make([][]telemetry.Event, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		events, err := telemetry.ReadJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		streams = append(streams, events)
	}
	g := obsplane.Reconstruct(telemetry.MergeEvents(streams...))
	if graphOut != "" {
		gf, err := os.Create(graphOut)
		if err != nil {
			return err
		}
		if err := g.WriteJSONL(gf); err != nil {
			gf.Close()
			return err
		}
		if err := gf.Close(); err != nil {
			return err
		}
	}
	return obsplane.WriteHopHistogram(w, g)
}

// checkTrace validates a trace file and reports its event count.
func checkTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	count, err := telemetry.ValidateJSONL(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: valid, %d events\n", path, count)
	return nil
}

// diffTraces reports the first line where two traces diverge; identical
// traces print a confirmation, differing ones exit non-zero.
func diffTraces(pathA, pathB string) error {
	fa, err := os.Open(pathA)
	if err != nil {
		return err
	}
	defer fa.Close()
	fb, err := os.Open(pathB)
	if err != nil {
		return err
	}
	defer fb.Close()
	line, aLine, bLine, err := telemetry.DiffLines(fa, fb)
	if err != nil {
		return err
	}
	if line == 0 {
		fmt.Printf("traces identical: %s == %s\n", pathA, pathB)
		return nil
	}
	return fmt.Errorf("traces diverge at line %d:\n  %s: %s\n  %s: %s",
		line, pathA, orEOF(aLine), pathB, orEOF(bLine))
}

// orEOF substitutes a marker for a side that ran out of lines.
func orEOF(s string) string {
	if s == "" {
		return "<eof>"
	}
	return s
}
