// Command p2ptrace inspects JSONL telemetry traces produced by
// p2pexp -trace and p2pnode -trace.
//
// Usage:
//
//	p2ptrace run.jsonl            # pretty-print the per-round timeline
//	p2ptrace -instance 3 run.jsonl  # timeline of one protocol instance only
//	p2ptrace -check run.jsonl     # strict schema + monotonicity check
//	p2ptrace -diff a.jsonl b.jsonl  # first diverging line (exit 1 if any)
//
// -diff is the determinism witness: two traced runs of the same seed must
// be byte-identical, so any reported divergence is a reproducibility bug
// (or two genuinely different runs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sgxp2p/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "p2ptrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("p2ptrace", flag.ContinueOnError)
	var (
		check    = fs.Bool("check", false, "validate the trace (schema, kinds, monotone timestamps) and print its event count")
		diff     = fs.Bool("diff", false, "compare two traces line by line; exit 1 on the first divergence")
		instance = fs.Int("instance", -1, "filter the timeline to one protocol instance id (multiplexed traces)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two trace files, got %d", fs.NArg())
		}
		return diffTraces(fs.Arg(0), fs.Arg(1))
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one trace file, got %d", fs.NArg())
	}
	if *check {
		return checkTrace(fs.Arg(0))
	}
	if *instance > 1<<32-1 {
		return fmt.Errorf("-instance %d out of range", *instance)
	}
	return printTimeline(os.Stdout, fs.Arg(0), *instance)
}

// printTimeline renders a trace as the per-round timeline, optionally
// filtered to one protocol instance (instance < 0 keeps everything).
func printTimeline(w io.Writer, path string, instance int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		return err
	}
	if instance >= 0 {
		events = telemetry.FilterInstance(events, uint32(instance))
	}
	return telemetry.WriteTimeline(w, events)
}

// checkTrace validates a trace file and reports its event count.
func checkTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	count, err := telemetry.ValidateJSONL(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: valid, %d events\n", path, count)
	return nil
}

// diffTraces reports the first line where two traces diverge; identical
// traces print a confirmation, differing ones exit non-zero.
func diffTraces(pathA, pathB string) error {
	fa, err := os.Open(pathA)
	if err != nil {
		return err
	}
	defer fa.Close()
	fb, err := os.Open(pathB)
	if err != nil {
		return err
	}
	defer fb.Close()
	line, aLine, bLine, err := telemetry.DiffLines(fa, fb)
	if err != nil {
		return err
	}
	if line == 0 {
		fmt.Printf("traces identical: %s == %s\n", pathA, pathB)
		return nil
	}
	return fmt.Errorf("traces diverge at line %d:\n  %s: %s\n  %s: %s",
		line, pathA, orEOF(aLine), pathB, orEOF(bLine))
}

// orEOF substitutes a marker for a side that ran out of lines.
func orEOF(s string) string {
	if s == "" {
		return "<eof>"
	}
	return s
}
