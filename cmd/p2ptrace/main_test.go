package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sgxp2p/internal/telemetry"
)

// writeMuxTrace exports a small multiplexed trace (two instances
// interleaved on one node) to a temp JSONL file.
func writeMuxTrace(t *testing.T) string {
	t.Helper()
	tr := telemetry.New(telemetry.Options{})
	tr.RecordInst(0, 1, 1, telemetry.KindInit, 0, 0, "")
	tr.RecordInst(0, 1, 2, telemetry.KindInit, 0, 0, "")
	tr.RecordInst(0, 2, 1, telemetry.KindDeliver, 1, 0, "")
	tr.RecordInst(0, 2, 2, telemetry.KindDeliver, 1, 0, "")
	tr.RecordInst(0, 3, 1, telemetry.KindAccept, 0, 0, "")
	path := filepath.Join(t.TempDir(), "mux.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.ExportJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTimelineInstanceFilter pins the -instance flag: the filtered
// timeline keeps only the requested instance's events.
func TestTimelineInstanceFilter(t *testing.T) {
	path := writeMuxTrace(t)
	var all, one strings.Builder
	if err := printTimeline(&all, path, -1); err != nil {
		t.Fatal(err)
	}
	if err := printTimeline(&one, path, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(all.String(), "inst=2") {
		t.Fatalf("unfiltered timeline lost instance 2:\n%s", all.String())
	}
	got := one.String()
	if strings.Contains(got, "inst=2") {
		t.Fatalf("-instance 1 timeline still shows instance 2:\n%s", got)
	}
	if strings.Count(got, "inst=1") != 3 {
		t.Fatalf("-instance 1 timeline should keep 3 events:\n%s", got)
	}
	var none strings.Builder
	if err := printTimeline(&none, path, 7); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(none.String(), "inst=") {
		t.Fatalf("-instance 7 timeline should be empty of events:\n%s", none.String())
	}
}
