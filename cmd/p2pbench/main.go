// Command p2pbench runs the repository's performance-critical benchmarks
// in-process via testing.Benchmark and writes the results as JSON, so
// regressions in the setup and sweep hot paths are caught by comparing
// checked-in snapshots (BENCH_setup.json) instead of eyeballing `go test
// -bench` output.
//
// Usage:
//
//	p2pbench                     # run all benchmarks, print JSON to stdout
//	p2pbench -o BENCH_setup.json # also write the JSON to a file
//	p2pbench -bench setup        # only benchmarks whose name contains "setup"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"sgxp2p"
	"sgxp2p/internal/experiments"
)

// result is one benchmark measurement in the JSON snapshot.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Seconds     float64 `json:"seconds_per_op"`
}

// snapshot is the file layout of BENCH_setup.json.
type snapshot struct {
	GoVersion  string   `json:"go_version"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Results    []result `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "p2pbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("p2pbench", flag.ContinueOnError)
	var (
		out     = fs.String("o", "", "also write the JSON snapshot to this file")
		match   = fs.String("bench", "", "only run benchmarks whose name contains this substring")
		workers = fs.Int("workers", 0, "worker pool size for the sweep benchmarks (0 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Mirror cmd/p2pexp: the sweeps allocate heavily and transiently.
	debug.SetGCPercent(400)

	sweep := func(id string) func(b *testing.B) {
		return func(b *testing.B) {
			runner, err := experiments.Get(id)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner(experiments.Config{Seed: int64(i + 1), Workers: *workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"cluster_setup_n128", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgxp2p.NewCluster(sgxp2p.Options{N: 128, T: 63, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"cluster_broadcast_n64", func(b *testing.B) {
			cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 64, T: 31, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			payload := sgxp2p.ValueFromString("bench")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Broadcast(0, payload); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sweep_fig2a", sweep("fig2a")},
		{"sweep_fig2b", sweep("fig2b")},
	}

	snap := snapshot{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *workers,
	}
	for _, bench := range benches {
		if *match != "" && !strings.Contains(bench.name, *match) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", bench.name)
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed", bench.name)
		}
		snap.Results = append(snap.Results, result{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Seconds:     time.Duration(r.NsPerOp()).Seconds(),
		})
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := os.Stdout.Write(data); err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
