// Command p2pbench runs the repository's performance-critical benchmarks
// in-process via testing.Benchmark and writes the results as JSON, so
// regressions in the setup and sweep hot paths are caught by comparing
// checked-in snapshots (BENCH_setup.json) instead of eyeballing `go test
// -bench` output.
//
// Usage:
//
//	p2pbench                     # run all benchmarks, print JSON to stdout
//	p2pbench -o BENCH_setup.json # also write the JSON to a file
//	p2pbench -bench setup        # only benchmarks whose name contains "setup"
//	p2pbench -baseline BENCH_setup.json
//	                             # print ns/op and allocs/op deltas against
//	                             # a previous snapshot (stderr, stdout stays JSON)
//	p2pbench -cpuprofile cpu.pprof -memprofile mem.pprof
//	                             # write pprof profiles for the benchmarked code
package main

import (
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"sgxp2p"
	"sgxp2p/internal/channel"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/enclave"
	"sgxp2p/internal/experiments"
	"sgxp2p/internal/scenario"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// result is one benchmark measurement in the JSON snapshot.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Seconds     float64 `json:"seconds_per_op"`
	// Throughput is broadcasts completed per second, reported only by the
	// multiplexed-runtime benchmarks (one op = many concurrent broadcasts).
	Throughput float64 `json:"broadcasts_per_sec,omitempty"`
}

// snapshot is the file layout of BENCH_setup.json.
type snapshot struct {
	GoVersion  string   `json:"go_version"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Results    []result `json:"results"`
	// Baseline and Comparison are present when the run diffed against a
	// previous snapshot (-baseline): the snapshot then carries its own
	// evidence of how the measured paths moved.
	Baseline   string       `json:"baseline,omitempty"`
	Comparison []comparison `json:"comparison,omitempty"`
}

// comparison is one benchmark's delta against the baseline snapshot.
type comparison struct {
	Name            string  `json:"name"`
	BaseNsPerOp     int64   `json:"base_ns_per_op"`
	NsPerOp         int64   `json:"ns_per_op"`
	NsDeltaPct      float64 `json:"ns_delta_pct"`
	BaseAllocsPerOp int64   `json:"base_allocs_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	AllocsDelta     int64   `json:"allocs_delta"`
	BaseBytesPerOp  int64   `json:"base_bytes_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	BytesDeltaPct   float64 `json:"bytes_delta_pct"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "p2pbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("p2pbench", flag.ContinueOnError)
	var (
		out        = fs.String("o", "", "also write the JSON snapshot to this file")
		match      = fs.String("bench", "", "only run benchmarks whose name contains one of these comma-separated substrings")
		workers    = fs.Int("workers", 0, "worker pool size for the sweep benchmarks (0 = all cores)")
		count      = fs.Int("count", 1, "run each benchmark this many times and keep the fastest (damps scheduler/GC noise)")
		baseline   = fs.String("baseline", "", "previous snapshot JSON to diff the new results against")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile taken after the run to this file")
		instances  = fs.Int("instances", 1000, "concurrent broadcasts per op in the headline cluster_mux benchmarks")
		live       = fs.Bool("live", false, "include the obs_live rows: a real N=128 process fleet run plain and streamed (minutes of wall time)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Load the baseline before running anything, so -o overwriting the
	// same file still diffs against the pre-run contents.
	var base *snapshot
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		base = &snapshot{}
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("baseline %s: %w", *baseline, err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// Mirror cmd/p2pexp: the sweeps allocate heavily and transiently.
	debug.SetGCPercent(400)

	sweep := func(id string) func(b *testing.B) {
		return func(b *testing.B) {
			runner, err := experiments.Get(id)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner(experiments.Config{Seed: int64(i + 1), Workers: *workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// broadcast measures a full ERB broadcast on a standing cluster —
	// the protocol hot loop the round-scoped frame coalescing targets.
	// The nobatch variants run the identical workload with coalescing
	// off, so a snapshot carries the batched-vs-unbatched delta for the
	// same binary.
	broadcast := func(n, t int, disableBatching bool) func(b *testing.B) {
		return func(b *testing.B) {
			cluster, err := sgxp2p.NewCluster(sgxp2p.Options{
				N: n, T: t, Seed: 1, DisableBatching: disableBatching,
			})
			if err != nil {
				b.Fatal(err)
			}
			payload := sgxp2p.ValueFromString("bench")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Broadcast(0, payload); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// muxBroadcast measures k concurrent ERB broadcasts multiplexed over a
	// standing cluster's shared links (one BroadcastMany per op): the
	// sustained-throughput workload the Mux exists for. Initiators rotate
	// round-robin so every node both initiates and relays. The nobatch
	// variant disables cross-instance frame coalescing — on this workload
	// the ablation is live, because concurrent instances give every link
	// multiple same-round frames to merge (a single broadcast does not;
	// see EXPERIMENTS.md).
	muxBroadcast := func(n, t, k int, disableBatching bool) func(b *testing.B) {
		return func(b *testing.B) {
			cluster, err := sgxp2p.NewCluster(sgxp2p.Options{
				N: n, T: t, Seed: 1, DisableBatching: disableBatching,
			})
			if err != nil {
				b.Fatal(err)
			}
			reqs := make([]sgxp2p.BroadcastRequest, k)
			for j := range reqs {
				reqs[j] = sgxp2p.BroadcastRequest{
					Initiator: sgxp2p.NodeID(j % n),
					Value:     sgxp2p.ValueFromString("bench"),
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.BroadcastMany(reqs, sgxp2p.MuxOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "broadcasts/sec")
		}
	}
	// serialMany is the baseline the mux is judged against: the same k
	// broadcasts issued one Broadcast epoch at a time over the same
	// cluster.
	serialMany := func(n, t, k int) func(b *testing.B) {
		return func(b *testing.B) {
			cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: n, T: t, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			payload := sgxp2p.ValueFromString("bench")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					if _, err := cluster.Broadcast(sgxp2p.NodeID(j%n), payload); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "broadcasts/sec")
		}
	}
	// dedicatedMany is the pre-mux status quo the Mux replaced: each
	// broadcast gets its own dedicated deployment — fresh enclaves,
	// links and peers per instance, so every broadcast re-pays the
	// O(N^2) channel setup. serialMany is the stricter variant of the
	// same serial schedule with setup amortized away by a standing
	// cluster; BENCH_mux.json records the mux against both.
	dedicatedMany := func(n, t, k int) func(b *testing.B) {
		return func(b *testing.B) {
			payload := sgxp2p.ValueFromString("bench")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: n, T: t, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := cluster.Broadcast(sgxp2p.NodeID(j%n), payload); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "broadcasts/sec")
		}
	}
	// obsBroadcast is the live-plane ablation, three rungs of the same
	// standing-cluster ERB broadcast: "off" (telemetry nil — the
	// zero-cost default), "record" (span hops recorded, nothing reads
	// them), and "stream" (span hops recorded while a streaming-exporter
	// -style consumer polls Since and Releases shipped prefixes
	// concurrently — the full live-export read side). record vs stream
	// isolates what STREAMING costs on top of recording; off vs record is
	// the (opt-in) recording cost itself, which in a real deployment
	// hides inside Δ-gated round idle time. The cluster and tracer are
	// rebuilt per op OUTSIDE the timer: a spans-enabled tracer retains
	// its whole event stream, so reusing one across ops would measure
	// appending into an ever-larger slice instead of the hot path.
	obsBroadcast := func(n, t int, record, stream bool) func(b *testing.B) {
		return func(b *testing.B) {
			payload := sgxp2p.ValueFromString("bench")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var tr *telemetry.Tracer
				if record {
					tr = telemetry.New(telemetry.Options{Spans: true})
				}
				cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: n, T: t, Seed: 1, Trace: tr})
				if err != nil {
					b.Fatal(err)
				}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				if stream {
					wg.Add(1)
					go func() {
						defer wg.Done()
						var cursor uint64
						tick := time.NewTicker(200 * time.Microsecond)
						defer tick.Stop()
						for {
							select {
							case <-tick.C:
								cursor += uint64(len(tr.Since(cursor)))
								tr.Release(cursor)
							case <-stop:
								cursor += uint64(len(tr.Since(cursor)))
								return
							}
						}
					}()
				}
				b.StartTimer()
				if _, err := cluster.Broadcast(0, payload); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				close(stop)
				wg.Wait()
				b.StartTimer()
			}
		}
	}
	// liveStream runs one real process fleet at n and reports its wall
	// time, with the live plane on (nodes streaming events, metric deltas
	// and probe gauges over their control connections, the runner
	// aggregating per-round percentiles) or off (the plain exit-dump
	// fleet) — the deployment-level overhead comparison: rounds are
	// Δ-gated, so streaming must not stretch wall time. One op is one
	// fleet run; testing.Benchmark stops at b.N=1 because the run is far
	// longer than the bench time.
	liveStream := func(n int, stream bool) func(b *testing.B) {
		return func(b *testing.B) {
			binDir, err := os.MkdirTemp("", "p2pbench-node-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(binDir)
			bin, err := scenario.BuildNodeBin(binDir)
			if err != nil {
				b.Fatal(err)
			}
			// The live Δ and start delay follow cmd/p2pscenario's bench
			// calibration: quadratic in n for crypto/scheduling throughput.
			delta := 500*time.Millisecond +
				time.Duration(n)*4*time.Millisecond +
				time.Duration(n*n)*200*time.Microsecond
			tc := &scenario.Testcase{
				Name:      fmt.Sprintf("obs-live-n%d", n),
				Instances: scenario.Range{Min: 4, Max: 1024, Default: n},
				Expect:    scenario.Expect{Agreement: true, Accepted: true},
			}
			rp, err := tc.ResolveParams(nil)
			if err != nil {
				b.Fatal(err)
			}
			rp.T = 1
			rp.Delta = delta
			rp.Epochs = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				outDir, err := os.MkdirTemp("", "p2pbench-live-*")
				if err != nil {
					b.Fatal(err)
				}
				report, err := scenario.Run(scenario.RunConfig{
					NodeBin: bin, Testcase: tc, Params: rp, Instances: n,
					OutDir:     outDir,
					StartDelay: 10*time.Second + time.Duration(n)*200*time.Millisecond,
					Stream:     stream,
					Log:        os.Stderr,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !report.Passed {
					for _, inv := range report.Invariants {
						fmt.Fprintf(os.Stderr, "invariant %s ok=%v %s\n", inv.Name, inv.OK, inv.Detail)
					}
					b.Fatalf("live fleet run (stream=%v) failed its invariants", stream)
				}
				os.RemoveAll(outDir)
			}
		}
	}
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"seal_open_hot", benchSealOpenHot},
		{"cluster_setup_n128", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgxp2p.NewCluster(sgxp2p.Options{N: 128, T: 63, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"cluster_broadcast_n64", broadcast(64, 31, false)},
		{"cluster_broadcast_n64_nobatch", broadcast(64, 31, true)},
		{"cluster_broadcast_n512", broadcast(512, 255, false)},
		{"cluster_broadcast_n512_nobatch", broadcast(512, 255, true)},
		// The instances sweep: same cluster, growing concurrency. The
		// headline count is -instances; the serial and nobatch rows at that
		// count are the two comparisons BENCH_mux.json is judged on.
		{"cluster_mux_n64_i1", muxBroadcast(64, 31, 1, false)},
		{"cluster_mux_n64_i10", muxBroadcast(64, 31, 10, false)},
		{"cluster_mux_n64_i100", muxBroadcast(64, 31, 100, false)},
		{fmt.Sprintf("cluster_mux_n64_i%d", *instances), muxBroadcast(64, 31, *instances, false)},
		{fmt.Sprintf("cluster_mux_nobatch_n64_i%d", *instances), muxBroadcast(64, 31, *instances, true)},
		{fmt.Sprintf("cluster_mux_serial_n64_i%d", *instances), serialMany(64, 31, *instances)},
		{fmt.Sprintf("cluster_mux_dedicated_n64_i%d", *instances), dedicatedMany(64, 31, *instances)},
		{"obs_broadcast_n64_off", obsBroadcast(64, 31, false, false)},
		{"obs_broadcast_n64_record", obsBroadcast(64, 31, true, false)},
		{"obs_broadcast_n64_stream", obsBroadcast(64, 31, true, true)},
		{"sweep_fig2a", sweep("fig2a")},
		{"sweep_fig2b", sweep("fig2b")},
	}
	if *live {
		benches = append(benches, struct {
			name string
			fn   func(b *testing.B)
		}{"obs_live_plain_erb_n128", liveStream(128, false)}, struct {
			name string
			fn   func(b *testing.B)
		}{"obs_live_stream_erb_n128", liveStream(128, true)})
	}

	snap := snapshot{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *workers,
	}
	for _, bench := range benches {
		if !matchesBench(bench.name, *match) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", bench.name)
		// The obs_live rows are real process fleets costing minutes each;
		// -count repeats are for damping scheduler noise on microbenchmarks
		// and would multiply that wall time for nothing (the fleet's wall
		// time is Δ-gated, not scheduler-noisy), so they always run once.
		reps := *count
		if strings.HasPrefix(bench.name, "obs_live") {
			reps = 1
		}
		r := testing.Benchmark(bench.fn)
		for c := 1; c < reps; c++ {
			if rc := testing.Benchmark(bench.fn); rc.N > 0 && rc.NsPerOp() < r.NsPerOp() {
				r = rc
			}
		}
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed", bench.name)
		}
		snap.Results = append(snap.Results, result{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Seconds:     time.Duration(r.NsPerOp()).Seconds(),
			Throughput:  r.Extra["broadcasts/sec"],
		})
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	if base != nil {
		printDeltas(os.Stderr, base, &snap)
		snap.Baseline = *baseline
		snap.Comparison = compare(base, &snap)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := os.Stdout.Write(data); err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// benchSealOpenHot measures the steady-state per-message cost of a live
// RealSealer link: encode once, seal with the prepared per-link cipher
// into a warm envelope buffer, open on the peer side into a warm scratch.
// This is the per-hop unit of work every multicast fans out N-1 times.
func benchSealOpenHot(b *testing.B) {
	clock := enclave.NewWallClock()
	ea, err := enclave.Launch(deploy.DefaultProgram, 0, rand.Reader, clock)
	if err != nil {
		b.Fatal(err)
	}
	eb, err := enclave.Launch(deploy.DefaultProgram, 1, rand.Reader, clock)
	if err != nil {
		b.Fatal(err)
	}
	la, err := channel.NewLink(ea, 1, eb.DHPublic(), channel.RealSealer{})
	if err != nil {
		b.Fatal(err)
	}
	lb, err := channel.NewLink(eb, 0, ea.DHPublic(), channel.RealSealer{})
	if err != nil {
		b.Fatal(err)
	}
	msg := &wire.Message{
		Type: wire.TypeEcho, Sender: 0, Initiator: 0,
		Seq: 7, Round: 1, HasValue: true,
		Value: sgxp2p.ValueFromString("hot path"),
	}
	var encodeBuf, env, scratch []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encoded, err := msg.AppendEncode(encodeBuf[:0])
		if err != nil {
			b.Fatal(err)
		}
		encodeBuf = encoded
		if env, err = la.SealEncodedAppend(env[:0], encoded); err != nil {
			b.Fatal(err)
		}
		if _, scratch, err = lb.OpenEncodedAppend(scratch[:0], env); err != nil {
			b.Fatal(err)
		}
	}
}

// printDeltas writes a per-benchmark comparison of ns/op, allocs/op and
// bytes/op against a previous snapshot, flagging results with no
// counterpart.
func printDeltas(w *os.File, base, cur *snapshot) {
	prev := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		prev[r.Name] = r
	}
	fmt.Fprintf(w, "\n%-30s %13s %13s %9s %11s %11s %9s %13s %13s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "delta",
		"old allocs", "new allocs", "delta",
		"old bytes", "new bytes", "delta")
	for _, r := range cur.Results {
		old, ok := prev[r.Name]
		if !ok {
			fmt.Fprintf(w, "%-30s %13s %13d %9s %11s %11d %9s %13s %13d %9s\n",
				r.Name, "-", r.NsPerOp, "new", "-", r.AllocsPerOp, "new", "-", r.BytesPerOp, "new")
			continue
		}
		fmt.Fprintf(w, "%-30s %13d %13d %9s %11d %11d %9s %13d %13d %9s\n",
			r.Name, old.NsPerOp, r.NsPerOp, pct(old.NsPerOp, r.NsPerOp),
			old.AllocsPerOp, r.AllocsPerOp, pct(old.AllocsPerOp, r.AllocsPerOp),
			old.BytesPerOp, r.BytesPerOp, pct(old.BytesPerOp, r.BytesPerOp))
	}
	fmt.Fprintln(w)
}

// matchesBench reports whether a benchmark name matches the -bench filter
// (comma-separated substrings, empty matches everything).
func matchesBench(name, filter string) bool {
	if filter == "" {
		return true
	}
	for _, sub := range strings.Split(filter, ",") {
		if sub != "" && strings.Contains(name, sub) {
			return true
		}
	}
	return false
}

// compare builds the per-benchmark deltas embedded in the snapshot.
func compare(base, cur *snapshot) []comparison {
	prev := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		prev[r.Name] = r
	}
	out := make([]comparison, 0, len(cur.Results))
	for _, r := range cur.Results {
		old, ok := prev[r.Name]
		if !ok {
			continue
		}
		c := comparison{
			Name:            r.Name,
			BaseNsPerOp:     old.NsPerOp,
			NsPerOp:         r.NsPerOp,
			BaseAllocsPerOp: old.AllocsPerOp,
			AllocsPerOp:     r.AllocsPerOp,
			AllocsDelta:     r.AllocsPerOp - old.AllocsPerOp,
			BaseBytesPerOp:  old.BytesPerOp,
			BytesPerOp:      r.BytesPerOp,
		}
		if old.NsPerOp != 0 {
			c.NsDeltaPct = 100 * float64(r.NsPerOp-old.NsPerOp) / float64(old.NsPerOp)
		}
		if old.BytesPerOp != 0 {
			c.BytesDeltaPct = 100 * float64(r.BytesPerOp-old.BytesPerOp) / float64(old.BytesPerOp)
		}
		out = append(out, c)
	}
	return out
}

// pct formats the relative change from old to new as a signed percentage.
func pct(old, new int64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(new-old)/float64(old))
}
