// Command p2pscenario orchestrates declarative multi-process scenarios:
// it reads TOML manifests (scenarios/*.toml), spawns a fleet of p2pnode
// processes over real TCP, runs the readiness barrier, fires churn
// phases, collects every process's telemetry JSONL and result JSON, and
// asserts the cross-process invariants (agreement, termination rounds,
// trace consistency) centrally.
//
// Usage:
//
//	p2pscenario scenarios/honest-sweep.toml          # run all testcases (sweeps included)
//	p2pscenario -list scenarios/*.toml               # list testcases
//	p2pscenario -testcase erb-honest -instances 16 scenarios/honest-sweep.toml
//	p2pscenario -param epochs=3 -param delta=300ms scenarios/slow-link.toml
//	p2pscenario -stream -testcase erb-honest scenarios/honest-sweep.toml  # live plane on
//	p2pscenario -bench BENCH_scenario.json -bench-n 128   # live fig2a point vs simnet
//
// -stream turns on the live observability plane: every node streams its
// telemetry events (with causal span hops) and metric deltas over the
// control connection while running, and the runner reports per-round
// fleet percentiles live and archives aggregate.jsonl + streamed.jsonl.
// -profile arms pprof-on-violation captures for wedged nodes.
//
// The p2pnode binary is built automatically unless -node-bin points at a
// prebuilt one. Artifacts (per-node traces, results, logs, merged.jsonl)
// land in -out (kept) or a temp dir (removed unless -keep).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strings"
	"time"

	"sgxp2p/internal/experiments"
	"sgxp2p/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "p2pscenario:", err)
		os.Exit(1)
	}
}

// paramFlags collects repeatable -param key=value overrides.
type paramFlags map[string]string

func (p paramFlags) String() string { return "" }
func (p paramFlags) Set(s string) error {
	key, val, found := strings.Cut(s, "=")
	if !found {
		return fmt.Errorf("-param wants key=value, got %q", s)
	}
	p[key] = val
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("p2pscenario", flag.ContinueOnError)
	params := paramFlags{}
	var (
		list      = fs.Bool("list", false, "list the manifests' testcases and exit")
		caseName  = fs.String("testcase", "", "run only this testcase")
		instances = fs.Int("instances", 0, "override the instance count (disables the sweep)")
		nodeBin   = fs.String("node-bin", "", "prebuilt p2pnode binary (default: go build it)")
		outDir    = fs.String("out", "", "artifact directory (default: temp dir)")
		keep      = fs.Bool("keep", false, "keep the artifact directory")
		benchOut  = fs.String("bench", "", "run the live fig2a cross-check and write this BENCH json")
		benchN    = fs.Int("bench-n", 128, "network size of the live bench point")
		stream    = fs.Bool("stream", false, "live observability plane: nodes stream telemetry+metrics during the run, the runner aggregates per-round fleet percentiles and writes aggregate.jsonl/streamed.jsonl")
		profile   = fs.Bool("profile", false, "pprof-on-violation: wedged nodes get CPU+heap captures into <out>/profiles before the fleet is reaped")
	)
	fs.Var(params, "param", "parameter override key=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *benchOut == "" && fs.NArg() == 0 {
		return fmt.Errorf("no manifests given (and no -bench)")
	}

	manifests := make([]*scenario.Manifest, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		m, err := scenario.ParseManifest(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		manifests = append(manifests, m)
	}

	if *list {
		for _, m := range manifests {
			fmt.Printf("%s\n", m.Name)
			for _, tc := range m.Testcases {
				sweep := ""
				if len(tc.Sweep) > 0 {
					sweep = fmt.Sprintf(" sweep=%v", tc.Sweep)
				}
				fmt.Printf("  %-24s instances %d..%d (default %d)%s\n",
					tc.Name, tc.Instances.Min, tc.Instances.Max, tc.Instances.Default, sweep)
			}
		}
		return nil
	}

	dir := *outDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "p2pscenario-*")
		if err != nil {
			return err
		}
		dir = tmp
		if !*keep {
			defer os.RemoveAll(tmp)
		}
	}
	bin := *nodeBin
	if bin == "" {
		var err error
		if bin, err = scenario.BuildNodeBin(dir); err != nil {
			return err
		}
	}

	if *benchOut != "" {
		return runBench(bin, dir, *benchOut, *benchN)
	}

	failures := 0
	for _, m := range manifests {
		for i := range m.Testcases {
			tc := &m.Testcases[i]
			if *caseName != "" && tc.Name != *caseName {
				continue
			}
			counts := []int{*instances}
			if *instances == 0 {
				if len(tc.Sweep) > 0 {
					counts = tc.Sweep
				} else {
					counts = []int{tc.Instances.Default}
				}
			}
			for _, n := range counts {
				if err := runOne(m, tc, bin, dir, n, params, *stream, *profile); err != nil {
					fmt.Fprintf(os.Stderr, "p2pscenario: %s/%s n=%d: %v\n", m.Name, tc.Name, n, err)
					failures++
				}
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d run(s) failed", failures)
	}
	return nil
}

// runOne orchestrates a single (testcase, instance count) run.
func runOne(m *scenario.Manifest, tc *scenario.Testcase, bin, dir string, n int, overrides map[string]string, stream, profile bool) error {
	rp, err := tc.ResolveParams(overrides)
	if err != nil {
		return err
	}
	sub := filepath.Join(dir, fmt.Sprintf("%s-%s-n%d", m.Name, tc.Name, n))
	report, err := scenario.Run(scenario.RunConfig{
		NodeBin:   bin,
		Testcase:  tc,
		Params:    rp,
		Instances: n,
		OutDir:    sub,
		Stream:    stream,
		Profile:   profile,
		Log:       os.Stderr,
	})
	if err != nil {
		return err
	}
	for _, inv := range report.Invariants {
		status := "ok"
		if !inv.OK {
			status = "VIOLATED"
		}
		fmt.Printf("%s/%s n=%d: %-18s %s  %s\n", m.Name, tc.Name, n, inv.Name, status, inv.Detail)
	}
	if !report.Passed {
		return fmt.Errorf("invariants violated (artifacts in %s)", sub)
	}
	return nil
}

// benchEntry is one BENCH_scenario.json record, shaped like the repo's
// other BENCH files with the live-vs-simnet fields added.
type benchEntry struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	SecondsPerOp float64 `json:"seconds_per_op"`
	N            int     `json:"n,omitempty"`
	Rounds       int     `json:"rounds,omitempty"`
	DeltaMS      int64   `json:"delta_ms,omitempty"`
	RoundsDelta  *int    `json:"rounds_delta,omitempty"`
	Tolerance    int     `json:"tolerance_rounds,omitempty"`
	Agree        *bool   `json:"agree,omitempty"`
}

// runBench runs the live fig2a point (honest ERB at benchN real TCP
// processes) and the simnet reference, and records both plus the
// agreement verdict in a BENCH json.
func runBench(bin, dir, outPath string, benchN int) error {
	// The live Δ scales quadratically with the fleet: the echo round
	// moves n*(n-1) sealed frames through however few cores the host
	// has, so the delivery bound is dominated by scheduling and crypto
	// throughput, not link bandwidth. The quadratic term is calibrated
	// for a single-core worst case (~0.2ms of shared CPU per frame).
	delta := 500*time.Millisecond +
		time.Duration(benchN)*4*time.Millisecond +
		time.Duration(benchN*benchN)*200*time.Microsecond
	tc := &scenario.Testcase{
		Name:      fmt.Sprintf("live-fig2a-n%d", benchN),
		Instances: scenario.Range{Min: 4, Max: 1024, Default: benchN},
		Expect:    scenario.Expect{Agreement: true, Accepted: true},
	}
	rp, err := tc.ResolveParams(nil)
	if err != nil {
		return err
	}
	rp.T = 1
	rp.Delta = delta
	rp.Epochs = 1
	fmt.Fprintf(os.Stderr, "p2pscenario: live fig2a point: n=%d delta=%v\n", benchN, delta)

	began := time.Now()
	report, err := scenario.Run(scenario.RunConfig{
		NodeBin:   bin,
		Testcase:  tc,
		Params:    rp,
		Instances: benchN,
		OutDir:    filepath.Join(dir, tc.Name),
		// Round 1 waits for the slowest process: each of the n nodes
		// derives all n demo enclaves and preflights n-1 listeners, so
		// the fleet's startup work is quadratic in n and shares however
		// few cores the host has.
		StartDelay: 10*time.Second + time.Duration(benchN)*200*time.Millisecond,
		Log:        os.Stderr,
	})
	if err != nil {
		return err
	}
	if !report.Passed {
		for _, inv := range report.Invariants {
			fmt.Fprintf(os.Stderr, "p2pscenario: invariant %s ok=%v %s\n", inv.Name, inv.OK, inv.Detail)
		}
		return fmt.Errorf("live bench run failed its invariants")
	}
	liveWall := time.Since(began)
	liveRounds := 0
	for _, node := range report.Nodes {
		if node.Byz || node.Result == nil {
			continue
		}
		for _, ep := range node.Result.Epochs {
			if ep.Accepted && int(ep.Round) > liveRounds {
				liveRounds = int(ep.Round)
			}
		}
	}

	ref, err := experiments.SimnetERBReference(experiments.Config{Seed: 42}, benchN)
	if err != nil {
		return err
	}
	const tolerance = 1
	roundsDelta := liveRounds - ref.Rounds
	agree := roundsDelta >= -tolerance && roundsDelta <= tolerance
	fmt.Printf("live fig2a n=%d: live rounds=%d, simnet rounds=%d, delta=%d (tolerance %d) agree=%v\n",
		benchN, liveRounds, ref.Rounds, roundsDelta, tolerance, agree)

	doc := struct {
		GoVersion  string       `json:"go_version"`
		GoMaxProcs int          `json:"gomaxprocs"`
		Workers    int          `json:"workers"`
		Results    []benchEntry `json:"results"`
	}{
		GoVersion:  goruntime.Version(),
		GoMaxProcs: goruntime.GOMAXPROCS(0),
		Workers:    0,
		Results: []benchEntry{
			{
				Name: fmt.Sprintf("live_fig2a_erb_n%d", benchN), Iterations: 1,
				NsPerOp: liveWall.Nanoseconds(), SecondsPerOp: liveWall.Seconds(),
				N: benchN, Rounds: liveRounds, DeltaMS: delta.Milliseconds(),
			},
			{
				Name: fmt.Sprintf("simnet_fig2a_erb_n%d", benchN), Iterations: 1,
				NsPerOp: ref.Termination.Nanoseconds(), SecondsPerOp: ref.Termination.Seconds(),
				N: benchN, Rounds: ref.Rounds, DeltaMS: (ref.OneRound / 2).Milliseconds(),
			},
			{
				Name: "fig2a_live_vs_simnet", Iterations: 1,
				RoundsDelta: &roundsDelta, Tolerance: tolerance, Agree: &agree,
			},
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if !agree {
		return fmt.Errorf("live point disagrees with simnet beyond tolerance")
	}
	return nil
}
