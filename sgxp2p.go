// Package sgxp2p is the public API of the sgxp2p library: a Go
// reproduction of "Robust P2P Primitives Using SGX Enclaves" (Jia, Tople,
// Moataz, Gong, Saxena, Liang — ICDCS 2020).
//
// The library provides the paper's two primitives over a network of
// SGX-like enclaved peers:
//
//   - reliable broadcast (ERB): min{f+2, t+2} rounds, O(N^2) messages,
//     tolerating t < N/2 byzantine nodes, and
//   - common unbiased random numbers (ERNG): the basic protocol for
//     t < N/2 and the cluster-sampled protocol for t <= N/3,
//
// plus the applications of the paper's Appendix H (random beacons, shared
// key generation, load balancing, random walks) and the byzantine
// adversary models used to evaluate them.
//
// The quickest start is a simulated cluster:
//
//	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 7, T: 3})
//	...
//	results, err := cluster.Broadcast(0, sgxp2p.ValueFromString("hello"))
//	emission, err := cluster.GenerateRandom()
//
// Everything runs on a deterministic virtual clock: a 1000-node broadcast
// that takes tens of seconds of protocol time replays in milliseconds.
// The same protocol code also runs over real TCP (see cmd/p2pnode).
package sgxp2p

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"sgxp2p/internal/beacon"
	"sgxp2p/internal/core/erb"
	"sgxp2p/internal/core/erng"
	"sgxp2p/internal/deploy"
	"sgxp2p/internal/runtime"
	"sgxp2p/internal/simnet"
	"sgxp2p/internal/telemetry"
	"sgxp2p/internal/wire"
)

// Core protocol types, re-exported from the implementation packages.
type (
	// NodeID identifies a peer (a dense index in [0, N)).
	NodeID = wire.NodeID
	// Value is a 256-bit protocol value: broadcast payloads and random
	// numbers.
	Value = wire.Value
	// BroadcastResult is one node's decision for a reliable broadcast.
	BroadcastResult = erb.Result
	// RandomResult is one node's decision for an ERNG run.
	RandomResult = erng.Result
	// Emission is one beacon output.
	Emission = beacon.Emission
	// Source produces successive common random values (implemented by
	// *Beacon and consumable by the application packages).
	Source = beacon.Source
	// Traffic aggregates transport-level counters.
	Traffic = simnet.Traffic
)

// DefaultBandwidth is the paper's testbed link: 128 MB/s shared.
const DefaultBandwidth = float64(simnet.DefaultBandwidth)

// ValueFromString derives a Value from arbitrary bytes (SHA-256).
func ValueFromString(s string) Value {
	return Value(sha256.Sum256([]byte(s)))
}

// Options configures a simulated cluster.
type Options struct {
	// N is the network size; T the byzantine bound (N >= 2T+1; the
	// optimized ERNG additionally requires T <= N/3).
	N, T int
	// Delta is the one-way delivery bound; a round lasts 2*Delta.
	// Defaults to 1 second.
	Delta time.Duration
	// Bandwidth models the shared link in bytes/second (0 = unlimited;
	// DefaultBandwidth matches the paper's testbed).
	Bandwidth float64
	// Seed makes the cluster fully deterministic.
	Seed int64
	// RealCrypto switches from the size-identical simulation sealer to
	// real AES-CTR + HMAC-SHA256 channels.
	RealCrypto bool
	// DisableBatching turns off per-round frame coalescing: every
	// protocol message travels as its own sealed envelope instead of one
	// batch frame per link per round. Protocol outcomes are identical
	// either way; the knob exists for wire-level debugging and for
	// measuring the coalescing win (cmd/p2pbench's *_nobatch benches).
	DisableBatching bool
	// Adversary assigns byzantine OS behaviour to nodes (nil entries and
	// missing ids are honest). See the Omit*/Delay*/Chain constructors.
	Adversary map[NodeID]Behavior
	// Trace attaches an event tracer to the whole cluster (the simulator's
	// virtual clock is bound for you); nil records nothing at zero cost.
	// Build it with telemetry.Options{Spans: true} to get the causal
	// seal→transit→open→deliver→handle hop decomposition that
	// internal/obsplane reconstructs.
	Trace *telemetry.Tracer
	// Metrics attaches a metrics registry; nil records nothing.
	Metrics *telemetry.Metrics
}

// Cluster is a simulated deployment of enclaved peers.
type Cluster struct {
	d   *deploy.Deployment
	t   int
	ads map[NodeID]*AdversaryOS
}

// NewCluster builds and sets up a cluster (enclave launch, attestation,
// channel establishment, sequence-number exchange).
func NewCluster(opts Options) (*Cluster, error) {
	c := &Cluster{t: opts.T, ads: make(map[NodeID]*AdversaryOS)}
	d, err := deploy.New(deploy.Options{
		N:               opts.N,
		T:               opts.T,
		Delta:           opts.Delta,
		Bandwidth:       opts.Bandwidth,
		Seed:            opts.Seed,
		RealCrypto:      opts.RealCrypto,
		DisableBatching: opts.DisableBatching,
		Trace:           opts.Trace,
		Metrics:         opts.Metrics,
		Wrap:            c.wrapper(opts),
	})
	if err != nil {
		return nil, err
	}
	c.d = d
	return c, nil
}

// N returns the cluster size.
func (c *Cluster) N() int { return len(c.d.Peers) }

// T returns the byzantine bound.
func (c *Cluster) T() int { return c.t }

// Halted reports whether a node has churned itself out of the network
// (halt-on-divergence).
func (c *Cluster) Halted(id NodeID) bool { return c.d.Peers[id].Halted() }

// Traffic returns the aggregate transport counters.
func (c *Cluster) Traffic() Traffic { return c.d.Net.Traffic() }

// ResetTraffic zeroes the transport counters.
func (c *Cluster) ResetTraffic() { c.d.Net.ResetTraffic() }

// Now returns the cluster's virtual time.
func (c *Cluster) Now() time.Duration { return c.d.Sim.Now() }

// AdversaryState exposes the byzantine OS wrapper of a node configured
// through Options.Adversary (nil for honest nodes), for releasing held
// messages or replaying tapes mid-experiment.
func (c *Cluster) AdversaryState(id NodeID) *AdversaryOS { return c.ads[id] }

// Broadcast runs one ERB instance with the given initiator and payload
// and returns every live node's decision indexed by node id. Nodes that
// halted during the run (byzantine, churned by P4) map to a zero Result
// with ok=false in Decided.
func (c *Cluster) Broadcast(initiator NodeID, v Value) (map[NodeID]BroadcastResult, error) {
	if int(initiator) >= c.N() {
		return nil, fmt.Errorf("sgxp2p: initiator %d out of range", initiator)
	}
	engines := make([]*erb.Engine, c.N())
	for i, p := range c.d.Peers {
		if p.Halted() {
			continue
		}
		eng, err := erb.NewEngine(p, erb.Config{T: c.t, ExpectedInitiators: []NodeID{initiator}})
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	if engines[initiator] != nil {
		engines[initiator].SetInput(v)
	}
	for i, p := range c.d.Peers {
		if engines[i] != nil {
			p.Start(engines[i], engines[i].Rounds())
		}
	}
	if err := c.d.Run(); err != nil {
		return nil, err
	}
	out := make(map[NodeID]BroadcastResult, c.N())
	for i, eng := range engines {
		if eng == nil || c.d.Peers[i].Halted() {
			continue
		}
		if res, ok := eng.Result(initiator); ok {
			out[NodeID(i)] = res
		}
	}
	for _, p := range c.d.Peers {
		p.BumpSeqs()
	}
	return out, nil
}

// BroadcastRequest names one broadcast of a multiplexed batch: the
// initiating node and the value it broadcasts.
type BroadcastRequest struct {
	Initiator NodeID
	Value     Value
}

// MuxOptions bounds the multiplexed runtime of BroadcastMany.
type MuxOptions struct {
	// MaxInFlight caps the broadcasts running concurrently on every node;
	// excess requests queue and are admitted FIFO as running windows
	// retire. Zero runs everything concurrently.
	MaxInFlight int
	// MaxBacklog caps the admission queue; requests past it fail the call
	// (runtime.ErrMuxBacklog). Zero means unbounded.
	MaxBacklog int
}

// BroadcastMany runs many ERB instances concurrently over one multiplexed
// runtime: every node hosts one lightweight engine per request behind a
// shared runtime.Mux, so all same-round traffic to a peer — across every
// in-flight broadcast — leaves in a single sealed batch frame. The i-th
// returned map holds every live node's decision for reqs[i], exactly as
// the i-th call of a serial Broadcast sequence would (same engines, same
// lockstep semantics; only the framing and the wall-clock change).
func (c *Cluster) BroadcastMany(reqs []BroadcastRequest, opts MuxOptions) ([]map[NodeID]BroadcastResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	for j, r := range reqs {
		if int(r.Initiator) >= c.N() {
			return nil, fmt.Errorf("sgxp2p: request %d initiator %d out of range", j, r.Initiator)
		}
	}
	n := c.N()
	muxes := make([]*runtime.Mux, n)
	engines := make([][]*erb.Engine, n)
	for i, p := range c.d.Peers {
		if p.Halted() {
			continue
		}
		m := runtime.NewMux(p, runtime.MuxConfig{MaxInFlight: opts.MaxInFlight, MaxBacklog: opts.MaxBacklog})
		muxes[i] = m
		engines[i] = make([]*erb.Engine, len(reqs))
		self := p.ID()
		engs := engines[i]
		for j, req := range reqs {
			// An ERB window is T+2 rounds: admission round (INIT) through
			// the acceptance deadline StartRound+T+1.
			if _, err := m.Spawn(c.t+2, func(inst *runtime.Instance) (runtime.Protocol, error) {
				eng, buildErr := erb.NewEngine(inst, erb.Config{
					T:                  c.t,
					StartRound:         inst.StartRound(),
					ExpectedInitiators: []NodeID{req.Initiator},
				})
				if buildErr != nil {
					return nil, buildErr
				}
				if self == req.Initiator {
					eng.SetInput(req.Value)
				}
				engs[j] = eng
				return eng, nil
			}); err != nil {
				return nil, fmt.Errorf("sgxp2p: spawn broadcast %d: %w", j, err)
			}
		}
	}
	var nextID uint32
	for i, p := range c.d.Peers {
		if muxes[i] == nil {
			continue
		}
		nextID = muxes[i].NextID()
		p.Start(muxes[i], muxes[i].PlannedRounds())
	}
	if err := c.d.Run(); err != nil {
		return nil, err
	}
	out := make([]map[NodeID]BroadcastResult, len(reqs))
	for j, req := range reqs {
		res := make(map[NodeID]BroadcastResult, n)
		for i := range c.d.Peers {
			if engines[i] == nil || engines[i][j] == nil || c.d.Peers[i].Halted() {
				continue
			}
			if r, ok := engines[i][j].Result(req.Initiator); ok {
				res[NodeID(i)] = r
			}
		}
		out[j] = res
	}
	for i, p := range c.d.Peers {
		// The mux consumed one instance id per request; re-align the epoch
		// counter past them so a later epoch never reuses a multiplexed id.
		if muxes[i] != nil {
			p.AlignInstance(nextID)
		}
		p.BumpSeqs()
	}
	return out, nil
}

// GenerateRandomMany runs count basic-ERNG epochs concurrently over one
// multiplexed runtime: every node hosts one lightweight ERNG instance
// per epoch behind a shared runtime.Mux, exactly as BroadcastMany hosts
// ERB engines. Each epoch's contribution is drawn inside the enclave at
// that instance's admission round, so concurrent epochs stay independent
// and unbiased. The i-th returned map holds every live node's decision
// for epoch i, indexed by node id.
func (c *Cluster) GenerateRandomMany(count int, opts MuxOptions) ([]map[NodeID]RandomResult, error) {
	if count <= 0 {
		return nil, nil
	}
	n := c.N()
	muxes := make([]*runtime.Mux, n)
	rngs := make([][]*erng.Basic, n)
	for i, p := range c.d.Peers {
		if p.Halted() {
			continue
		}
		m := runtime.NewMux(p, runtime.MuxConfig{MaxInFlight: opts.MaxInFlight, MaxBacklog: opts.MaxBacklog})
		muxes[i] = m
		rngs[i] = make([]*erng.Basic, count)
		rs := rngs[i]
		for j := 0; j < count; j++ {
			// A basic-ERNG window is T+2 rounds: the embedded all-initiator
			// ERB's admission round through its acceptance deadline.
			if _, err := m.Spawn(c.t+2, func(inst *runtime.Instance) (runtime.Protocol, error) {
				b, buildErr := erng.NewBasicAt(inst, c.t, inst.StartRound())
				if buildErr != nil {
					return nil, buildErr
				}
				rs[j] = b
				return b, nil
			}); err != nil {
				return nil, fmt.Errorf("sgxp2p: spawn erng epoch %d: %w", j, err)
			}
		}
	}
	var nextID uint32
	for i, p := range c.d.Peers {
		if muxes[i] == nil {
			continue
		}
		nextID = muxes[i].NextID()
		p.Start(muxes[i], muxes[i].PlannedRounds())
	}
	if err := c.d.Run(); err != nil {
		return nil, err
	}
	out := make([]map[NodeID]RandomResult, count)
	for j := 0; j < count; j++ {
		res := make(map[NodeID]RandomResult, n)
		for i := range c.d.Peers {
			if rngs[i] == nil || rngs[i][j] == nil || c.d.Peers[i].Halted() {
				continue
			}
			if r, ok := rngs[i][j].Result(); ok {
				res[NodeID(i)] = r
			}
		}
		out[j] = res
	}
	for i, p := range c.d.Peers {
		// The mux consumed one instance id per epoch; re-align the epoch
		// counter past them so a later epoch never reuses a multiplexed id.
		if muxes[i] != nil {
			p.AlignInstance(nextID)
		}
		p.BumpSeqs()
	}
	return out, nil
}

// BeaconMode selects the ERNG protocol behind a beacon.
type BeaconMode = beacon.Mode

// Beacon modes.
const (
	// BeaconBasic uses the unoptimized ERNG (t < N/2).
	BeaconBasic = beacon.ModeBasic
	// BeaconOptimized uses the cluster-sampled ERNG (t <= N/3).
	BeaconOptimized = beacon.ModeOptimized
)

// Beacon is a periodic random beacon service over the cluster.
type Beacon = beacon.Beacon

// NewBeacon builds a beacon service over the cluster.
func (c *Cluster) NewBeacon(mode BeaconMode) (*Beacon, error) {
	return beacon.New(c.d, beacon.Config{T: c.t, Mode: mode})
}

// GenerateRandom runs one basic-ERNG epoch and returns the common
// emission.
func (c *Cluster) GenerateRandom() (Emission, error) {
	b, err := c.NewBeacon(BeaconBasic)
	if err != nil {
		return Emission{}, err
	}
	return b.RunEpoch()
}

// ErrNoOutput is returned when an ERNG epoch produced bottom.
var ErrNoOutput = errors.New("sgxp2p: epoch produced no output")

// JoinOptions configures a dynamic join (the Appendix G extension).
type JoinOptions struct {
	// Sponsor is the existing node announcing the joiner via ERB.
	Sponsor NodeID
	// PuzzleDifficulty, when positive, makes admission cost a sybil
	// proof-of-work of ~2^difficulty hashes bound to the joiner's
	// attested identity.
	PuzzleDifficulty int
}

// Join admits a new node into the cluster: the joiner's enclave is
// launched and attested, the sponsor reliably broadcasts the join
// announcement through ERB, and on acceptance every node establishes a
// channel to the newcomer. Returns the new node's id.
func (c *Cluster) Join(opts JoinOptions) (NodeID, error) {
	return c.d.Join(deploy.JoinOptions{
		Sponsor:          opts.Sponsor,
		PuzzleDifficulty: opts.PuzzleDifficulty,
	})
}
