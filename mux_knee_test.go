package sgxp2p_test

import (
	"testing"
	"time"

	"sgxp2p"
)

// muxBatchSeconds runs one BroadcastMany batch of the given size and
// returns its wall-clock duration plus a correctness spot-check.
func muxBatchSeconds(t *testing.T, c *sgxp2p.Cluster, count int) time.Duration {
	t.Helper()
	reqs := make([]sgxp2p.BroadcastRequest, count)
	for j := range reqs {
		reqs[j] = sgxp2p.BroadcastRequest{
			Initiator: sgxp2p.NodeID(j % c.N()),
			Value:     sgxp2p.ValueFromString("knee payload"),
		}
	}
	began := time.Now()
	results, err := c.BroadcastMany(reqs, sgxp2p.MuxOptions{MaxInFlight: 8})
	elapsed := time.Since(began)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != count {
		t.Fatalf("got %d results, want %d", len(results), count)
	}
	for j, res := range results {
		if len(res) != c.N() {
			t.Fatalf("request %d decided at %d nodes, want %d", j, len(res), c.N())
		}
		for id, r := range res {
			if !r.Accepted {
				t.Fatalf("request %d rejected at node %d: %+v", j, id, r)
			}
		}
	}
	return elapsed
}

// TestBroadcastManyAdmissionKnee pins the multiplexed runtime's scaling
// past its admission knee: per-broadcast wall-clock cost must stay
// roughly flat between a 100-instance batch and a 1000-instance batch.
// The mux admits MaxInFlight instances at a time and retires whole
// windows as they finish, so a tenfold-longer queue amortizes over
// tenfold more work — historically the i100→i1000 per-instance ratio is
// ~0.95 (BENCH_mux.json). The 0.4 floor leaves generous room for
// scheduler noise on loaded hosts while still catching a regression
// that makes admission cost grow with queue depth (the failure mode the
// knee guards: per-instance work scaling with backlog length, which
// turns the flat line into a cliff).
func TestBroadcastManyAdmissionKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 1000-broadcast batch")
	}
	c, err := sgxp2p.NewCluster(sgxp2p.Options{N: 16, T: 7, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up batch: first-use allocations (link buffers, tracker maps)
	// land here instead of skewing the measured i100 run.
	muxBatchSeconds(t, c, 32)

	// Min of two runs for the short batch: it is the noisier of the two
	// measurements (seconds-scale runs self-average, 100-instance runs
	// feel every scheduler hiccup).
	t100 := muxBatchSeconds(t, c, 100)
	if again := muxBatchSeconds(t, c, 100); again < t100 {
		t100 = again
	}
	t1000 := muxBatchSeconds(t, c, 1000)

	perInst100 := t100.Seconds() / 100
	perInst1000 := t1000.Seconds() / 1000
	ratio := perInst100 / perInst1000
	t.Logf("per-instance: i100 %.3fms, i1000 %.3fms, throughput ratio %.2f",
		perInst100*1e3, perInst1000*1e3, ratio)
	if ratio < 0.4 {
		t.Fatalf("admission knee regressed: i1000 per-instance cost %.3fms is %.1fx the i100 cost %.3fms (ratio %.2f < 0.4)",
			perInst1000*1e3, perInst1000/perInst100, perInst100*1e3, ratio)
	}
}
