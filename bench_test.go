// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark per artifact (see DESIGN.md for the index and
// EXPERIMENTS.md for recorded paper-vs-measured results). Each iteration
// performs the complete experiment sweep at the default scale; pass
// -benchtime=1x for a single regeneration, and use cmd/p2pexp -full for
// the paper-scale parameter ranges.
package sgxp2p_test

import (
	"testing"

	"sgxp2p"
	"sgxp2p/internal/experiments"
)

// benchExperiment runs one experiment sweep per iteration and reports the
// number of data points produced.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		tbl, err := runner(experiments.Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tbl.Rows)
	}
	b.ReportMetric(float64(rows), "datapoints")
}

// BenchmarkFig2aERBTermination regenerates Figure 2a: ERB termination
// time versus network size with an honest initiator.
func BenchmarkFig2aERBTermination(b *testing.B) { benchExperiment(b, "fig2a") }

// BenchmarkFig2bERNGTermination regenerates Figure 2b: unoptimized-ERNG
// termination time versus network size.
func BenchmarkFig2bERNGTermination(b *testing.B) { benchExperiment(b, "fig2b") }

// BenchmarkFig2cByzantineTermination regenerates Figure 2c: ERB
// termination versus byzantine fraction under the chain strategy.
func BenchmarkFig2cByzantineTermination(b *testing.B) { benchExperiment(b, "fig2c") }

// BenchmarkFig3aERBTraffic regenerates Figure 3a: ERB communication
// versus network size against the theoretical quadratic curve.
func BenchmarkFig3aERBTraffic(b *testing.B) { benchExperiment(b, "fig3a") }

// BenchmarkFig3bERNGTraffic regenerates Figure 3b: unoptimized versus
// optimized ERNG communication with the theoretical curves.
func BenchmarkFig3bERNGTraffic(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig3cByzantineTraffic regenerates Figure 3c: ERB communication
// versus byzantine fraction (halt-on-divergence traffic reduction).
func BenchmarkFig3cByzantineTraffic(b *testing.B) { benchExperiment(b, "fig3c") }

// BenchmarkTab1Broadcast regenerates Table 1: round and communication
// complexity of reliable broadcast across the implemented protocols.
func BenchmarkTab1Broadcast(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkTab2RNG regenerates Table 2: round and communication
// complexity of the distributed RNG protocols.
func BenchmarkTab2RNG(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkSanitization regenerates the Appendix D experiment: geometric
// decay of the byzantine population under halt-on-divergence.
func BenchmarkSanitization(b *testing.B) { benchExperiment(b, "sanitize") }

// BenchmarkBiasResistance regenerates the unbiasedness experiment:
// attacked signature-RNG versus attacked ERNG.
func BenchmarkBiasResistance(b *testing.B) { benchExperiment(b, "bias") }

// BenchmarkClusterBroadcast measures one full ERB broadcast (setup
// excluded) on a 64-node cluster through the public API.
func BenchmarkClusterBroadcast(b *testing.B) {
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 64, T: 31, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	payload := sgxp2p.ValueFromString("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Broadcast(0, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterBroadcastMany measures the multiplexed runtime: 32
// concurrent ERB instances over one 16-node cluster, admitted 8 at a
// time. Small-scale smoke coverage of the mux path; the real sustained
// throughput artifact is BENCH_mux.json (make bench-mux).
func BenchmarkClusterBroadcastMany(b *testing.B) {
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 16, T: 7, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]sgxp2p.BroadcastRequest, 32)
	for j := range reqs {
		reqs[j] = sgxp2p.BroadcastRequest{
			Initiator: sgxp2p.NodeID(j % cluster.N()),
			Value:     sgxp2p.ValueFromString("bench"),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := cluster.BroadcastMany(reqs, sgxp2p.MuxOptions{MaxInFlight: 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(reqs) {
			b.Fatalf("got %d results, want %d", len(results), len(reqs))
		}
	}
}

// BenchmarkClusterRandom measures one full basic-ERNG epoch on a 16-node
// cluster through the public API.
func BenchmarkClusterRandom(b *testing.B) {
	cluster, err := sgxp2p.NewCluster(sgxp2p.Options{N: 16, T: 7, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.GenerateRandom(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSetup measures deployment construction (enclave launch,
// attestation, pairwise channel establishment) for 128 nodes.
func BenchmarkClusterSetup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sgxp2p.NewCluster(sgxp2p.Options{N: 128, T: 63, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablations (P4
// halt-on-divergence on/off, early stopping vs deadline).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablate") }
